// Serving runtime tests: clock sources, thread-safe dispatch with
// conservation accounting, binary trace persistence, and the
// record→replay bridge (including the bit-identical golden pin).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "dispatch/least_load.h"
#include "obs/metrics.h"
#include "serving/clock.h"
#include "serving/replay.h"
#include "serving/serving_dispatcher.h"
#include "serving/trace_io.h"
#include "util/check.h"

namespace {

using hs::core::PolicyKind;
using hs::serving::ManualClock;
using hs::serving::RecordedTrace;
using hs::serving::ServingConfig;
using hs::serving::ServingDispatcher;
using hs::serving::ServingStatus;
using hs::serving::WallClock;

const std::vector<double> kSpeeds{1.0, 2.0, 4.0, 8.0};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "hs_serving_" + name;
}

/// Exact-double equality that distinguishes every bit pattern (EXPECT_EQ
/// on doubles is fine for the values used here, but the round-trip test
/// is *about* low-order bits, so compare the representations).
void expect_bits_equal(double a, double b) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b));
}

// ---- Clocks -------------------------------------------------------------

TEST(ClockTest, ManualClockAdvancesAndSets) {
  ManualClock clock(5.0);
  EXPECT_EQ(clock.now(), 5.0);
  clock.advance(2.5);
  EXPECT_EQ(clock.now(), 7.5);
  clock.set(1.0);
  EXPECT_EQ(clock.now(), 1.0);
}

TEST(ClockTest, WallClockIsMonotonicFromZero) {
  WallClock clock;
  const double a = clock.now();
  const double b = clock.now();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

// ---- Serving dispatcher: single-threaded semantics ----------------------

TEST(ServingDispatcherTest, AcquireMatchesBareDispatcherBitForBit) {
  // The wrapper adds locking and recording but must not perturb the
  // policy: an ORAN dispatcher (which draws from the RNG every pick)
  // wrapped in ServingDispatcher yields the same machine sequence as
  // the bare dispatcher driven by hand with the same seed and times.
  auto wrapped_inner =
      hs::core::make_policy_dispatcher(PolicyKind::kORAN, kSpeeds, 0.7);
  auto bare = hs::core::make_policy_dispatcher(PolicyKind::kORAN, kSpeeds, 0.7);

  ManualClock clock;
  ServingConfig config;
  config.seed = 7;
  config.clock = &clock;
  ServingDispatcher serving(*wrapped_inner, config);

  hs::rng::Xoshiro256 bare_gen(7);
  for (int i = 0; i < 500; ++i) {
    clock.advance(0.001);
    const double size = 0.5 + 0.01 * (i % 9);
    bare->on_arrival(clock.now());
    const size_t expected = bare->pick_sized(bare_gen, size);
    EXPECT_EQ(serving.acquire(size), expected);
  }
  EXPECT_EQ(serving.acquired(), 500u);
}

TEST(ServingDispatcherTest, ReleaseFeedsLeastLoadEstimates) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ManualClock clock;
  ServingConfig config;
  config.clock = &clock;
  ServingDispatcher serving(inner, config);

  std::vector<size_t> placed;
  for (int i = 0; i < 8; ++i) {
    clock.advance(0.1);
    placed.push_back(serving.acquire(1.0));
  }
  uint64_t estimated = 0;
  for (size_t m = 0; m < kSpeeds.size(); ++m) {
    estimated += inner.estimated_queue(m);
  }
  EXPECT_EQ(estimated, 8u);
  EXPECT_EQ(serving.in_flight(), 8);

  for (const size_t machine : placed) {
    clock.advance(0.1);
    ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
  }
  for (size_t m = 0; m < kSpeeds.size(); ++m) {
    EXPECT_EQ(inner.estimated_queue(m), 0u);
  }
  EXPECT_EQ(serving.in_flight(), 0);
  EXPECT_EQ(serving.acquired(), serving.released());
}

TEST(ServingDispatcherTest, RejectsInvalidArguments) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ServingDispatcher serving(inner);
  EXPECT_THROW((void)serving.acquire(0.0), hs::util::CheckError);
  EXPECT_THROW((void)serving.acquire(-1.0), hs::util::CheckError);
  // The feedback path is hardened, not fatal: a bad index or a release
  // with no matching acquire is reported and ignored.
  EXPECT_EQ(serving.release(kSpeeds.size(), 1.0),
            ServingStatus::kInvalidMachine);
  EXPECT_EQ(serving.report_result(kSpeeds.size(), true),
            ServingStatus::kInvalidMachine);
  EXPECT_EQ(serving.report_heartbeat(kSpeeds.size()),
            ServingStatus::kInvalidMachine);
  EXPECT_EQ(serving.release(0, 1.0), ServingStatus::kNotInFlight);
  EXPECT_EQ(serving.released(), 0u);
}

TEST(ServingDispatcherTest, DoubleReleaseIsRejectedWithoutCorruption) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ServingDispatcher serving(inner);
  const size_t machine = serving.acquire(1.0);
  EXPECT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
  // The second release of the same request must not drain the policy's
  // queue estimate below reality or move the conservation counters.
  EXPECT_EQ(serving.release(machine, 1.0), ServingStatus::kNotInFlight);
  EXPECT_EQ(serving.released(), 1u);
  EXPECT_EQ(serving.in_flight(), 0);
  for (size_t m = 0; m < kSpeeds.size(); ++m) {
    EXPECT_EQ(inner.estimated_queue(m), 0u);
  }
}

TEST(ServingDispatcherTest, WithExclusiveRunsUnderLockAndReturns) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ServingDispatcher serving(inner);
  const std::string name = serving.with_exclusive(
      [](hs::dispatch::Dispatcher& d) { return d.name(); });
  EXPECT_EQ(name, "least-load");

  // Masking through the exclusive section steers subsequent picks.
  serving.with_exclusive([](hs::dispatch::Dispatcher& d) {
    return d.set_available_mask({false, false, true, false});
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(serving.acquire(1.0), 2u);
  }
}

TEST(ServingDispatcherTest, RecordingStopsAtCapacityKeepingPrefix) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ManualClock clock;
  ServingConfig config;
  config.clock = &clock;
  config.record_capacity = 4;
  ServingDispatcher serving(inner, config);

  for (int i = 0; i < 6; ++i) {
    clock.advance(1.0);
    const size_t machine = serving.acquire(2.0);
    ASSERT_EQ(serving.release(machine, 2.0), ServingStatus::kOk);
  }
  EXPECT_EQ(serving.record_count(), 4u);
  EXPECT_EQ(serving.record_dropped(), 2u);
  EXPECT_EQ(serving.acquired(), 6u);

  const RecordedTrace recorded = serving.snapshot();
  ASSERT_EQ(recorded.trace.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    expect_bits_equal(recorded.trace.jobs()[i].arrival_time,
                      static_cast<double>(i + 1));
    expect_bits_equal(recorded.trace.jobs()[i].size, 2.0);
  }
}

TEST(ServingDispatcherTest, SnapshotCarriesProvenance) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ServingConfig config;
  config.seed = 12345;
  config.record_capacity = 2;
  ServingDispatcher serving(inner, config);
  (void)serving.acquire(1.0);

  const RecordedTrace recorded = serving.snapshot();
  EXPECT_EQ(recorded.seed, 12345u);
  EXPECT_GT(recorded.recorded_unix_nanos, 0u);
  EXPECT_EQ(recorded.recorded_unix_nanos, serving.recorded_unix_nanos());
  EXPECT_EQ(recorded.trace.size(), 1u);
}

TEST(ServingDispatcherTest, RegisterGaugesExposesConservationCounters) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ServingConfig config;
  config.record_capacity = 8;
  ServingDispatcher serving(inner, config);
  const size_t a = serving.acquire(1.0);
  (void)serving.acquire(1.0);
  ASSERT_EQ(serving.release(a, 1.0), ServingStatus::kOk);

  hs::obs::MetricsRegistry registry;
  serving.register_gauges(registry);
  registry.sample(0.0);
  EXPECT_EQ(registry.value(0, registry.column("serving.acquired")), 2.0);
  EXPECT_EQ(registry.value(0, registry.column("serving.released")), 1.0);
  EXPECT_EQ(registry.value(0, registry.column("serving.in_flight")), 1.0);
  EXPECT_EQ(registry.value(0, registry.column("serving.recorded")), 2.0);
  EXPECT_EQ(registry.value(0, registry.column("serving.record_dropped")),
            0.0);
}

// ---- Concurrency (runs under TSan in the sanitize-thread CI job) --------

TEST(ServingConcurrencyTest, ConservationUnderConcurrentLoad) {
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 20000;

  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ServingConfig config;
  config.record_capacity = 1024;  // overflows on purpose: the drop
                                  // counter is part of conservation
  ServingDispatcher serving(inner, config);

  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&serving] {
      std::vector<size_t> held;
      held.reserve(8);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        held.push_back(serving.acquire(1.0));
        // Hold a few requests in flight, then drain — exercises
        // interleaved acquire/release rather than lockstep pairs.
        if (held.size() == 8) {
          for (const size_t machine : held) {
            (void)serving.release(machine, 1.0);
          }
          held.clear();
        }
      }
      for (const size_t machine : held) {
        (void)serving.release(machine, 1.0);
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }

  const uint64_t total = kThreads * kOpsPerThread;
  EXPECT_EQ(serving.acquired(), total);
  EXPECT_EQ(serving.released(), total);
  EXPECT_EQ(serving.in_flight(), 0);
  EXPECT_EQ(serving.record_count() + serving.record_dropped(), total);
  // Every acquire was released, so Least-Load's queue estimates drained
  // back to exactly zero — the policy-level conservation identity.
  for (size_t m = 0; m < kSpeeds.size(); ++m) {
    EXPECT_EQ(inner.estimated_queue(m), 0u);
  }
}

TEST(ServingConcurrencyTest, MaskChurnDuringLoadStaysConserved) {
  constexpr size_t kThreads = 3;
  constexpr size_t kOpsPerThread = 5000;

  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ServingDispatcher serving(inner);
  std::atomic<bool> stop{false};

  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&serving] {
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const size_t machine = serving.acquire(1.0);
        EXPECT_LT(machine, kSpeeds.size());
        (void)serving.release(machine, 1.0);
      }
    });
  }
  std::thread admin([&serving, &stop] {
    // Administrative churn through the exclusive section while the
    // workers hammer the hot path: flip which machines are available.
    bool odd = false;
    while (!stop.load(std::memory_order_relaxed)) {
      odd = !odd;
      serving.with_exclusive([odd](hs::dispatch::Dispatcher& d) {
        return d.set_available_mask(odd
                                        ? std::vector<bool>{true, false, true,
                                                            false}
                                        : std::vector<bool>{true, true, true,
                                                            true});
      });
      std::this_thread::yield();
    }
  });
  for (auto& t : pool) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  admin.join();

  const uint64_t total = kThreads * kOpsPerThread;
  EXPECT_EQ(serving.acquired(), total);
  EXPECT_EQ(serving.released(), total);
  EXPECT_EQ(serving.in_flight(), 0);
}

// ---- Binary trace persistence -------------------------------------------

RecordedTrace gnarly_trace() {
  // Values chosen to die in text round-trips: low-order mantissa bits
  // from repeated decimal-unrepresentable increments.
  RecordedTrace recorded;
  recorded.seed = 0xDEADBEEFCAFEF00Dull;
  recorded.recorded_unix_nanos = 1770000000123456789ull;
  std::vector<hs::queueing::Job> jobs;
  double t = 0.1;
  for (uint64_t i = 0; i < 100; ++i) {
    t += 0.1 + 1e-13 * static_cast<double>(i);
    jobs.push_back(hs::queueing::Job{i, t, 1.0 / 3.0 + 1e-16 * double(i)});
  }
  recorded.trace = hs::workload::JobTrace(std::move(jobs));
  return recorded;
}

TEST(TraceIoTest, BinaryRoundTripIsBitIdentical) {
  const std::string path = temp_path("roundtrip.trace");
  const RecordedTrace original = gnarly_trace();
  hs::serving::save_trace_binary(path, original);
  const RecordedTrace loaded = hs::serving::load_trace_binary(path);

  EXPECT_EQ(loaded.seed, original.seed);
  EXPECT_EQ(loaded.recorded_unix_nanos, original.recorded_unix_nanos);
  ASSERT_EQ(loaded.trace.size(), original.trace.size());
  for (size_t i = 0; i < original.trace.size(); ++i) {
    expect_bits_equal(loaded.trace.jobs()[i].arrival_time,
                      original.trace.jobs()[i].arrival_time);
    expect_bits_equal(loaded.trace.jobs()[i].size,
                      original.trace.jobs()[i].size);
  }
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  const std::string path = temp_path("empty.trace");
  RecordedTrace original;
  original.seed = 3;
  original.recorded_unix_nanos = 9;
  hs::serving::save_trace_binary(path, original);
  const RecordedTrace loaded = hs::serving::load_trace_binary(path);
  EXPECT_EQ(loaded.seed, 3u);
  EXPECT_EQ(loaded.recorded_unix_nanos, 9u);
  EXPECT_TRUE(loaded.trace.empty());
}

TEST(TraceIoTest, LoadRejectsMissingFile) {
  EXPECT_THROW((void)hs::serving::load_trace_binary(
                   temp_path("does_not_exist.trace")),
               hs::util::CheckError);
}

TEST(TraceIoTest, LoadRejectsBadMagic) {
  const std::string path = temp_path("bad_magic.trace");
  std::ofstream out(path, std::ios::binary);
  out << "NOTATRACEFILE-------------------------------------";
  out.close();
  EXPECT_THROW((void)hs::serving::load_trace_binary(path),
               hs::util::CheckError);
}

TEST(TraceIoTest, LoadRejectsTruncatedPayload) {
  const std::string path = temp_path("truncated.trace");
  hs::serving::save_trace_binary(path, gnarly_trace());
  // Chop the last record in half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<long>(bytes.size() - 8));
  out.close();
  EXPECT_THROW((void)hs::serving::load_trace_binary(path),
               hs::util::CheckError);
}

// ---- Record → replay bridge ---------------------------------------------

/// A deterministic serving session: ManualClock arrivals every 50 ms,
/// sizes cycling through 7 values, recorded to capacity.
RecordedTrace recorded_session(PolicyKind kind, uint64_t seed, size_t jobs) {
  auto inner = hs::core::make_policy_dispatcher(kind, kSpeeds, 0.7);
  ManualClock clock;
  ServingConfig config;
  config.seed = seed;
  config.clock = &clock;
  config.record_capacity = jobs;
  ServingDispatcher serving(*inner, config);
  for (size_t i = 0; i < jobs; ++i) {
    clock.advance(0.05);
    const double size = 0.1 + 0.01 * static_cast<double>(i % 7);
    const size_t machine = serving.acquire(size);
    EXPECT_EQ(serving.release(machine, size), ServingStatus::kOk);
  }
  return serving.snapshot();
}

TEST(ReplayTest, ReplayConfigSpansRecordedHorizon) {
  const RecordedTrace recorded = recorded_session(PolicyKind::kORR, 11, 40);
  const auto config = hs::serving::replay_config(recorded, kSpeeds);
  EXPECT_EQ(config.sim_time, recorded.trace.horizon());
  EXPECT_EQ(config.warmup_frac, 0.0);
  EXPECT_EQ(config.seed, 11u);
  EXPECT_EQ(config.speeds, kSpeeds);
}

TEST(ReplayTest, ReplayIsBitIdenticalRunToRun) {
  const RecordedTrace recorded = recorded_session(PolicyKind::kORAN, 21, 300);
  auto dispatcher =
      hs::core::make_policy_dispatcher(PolicyKind::kORAN, kSpeeds, 0.7);
  const auto first = hs::serving::replay(recorded, kSpeeds, *dispatcher);
  const auto second = hs::serving::replay(recorded, kSpeeds, *dispatcher);

  EXPECT_EQ(first.total_arrivals, second.total_arrivals);
  EXPECT_EQ(first.completed_jobs, second.completed_jobs);
  EXPECT_EQ(first.events_fired, second.events_fired);
  expect_bits_equal(first.mean_response_time, second.mean_response_time);
  expect_bits_equal(first.mean_response_ratio, second.mean_response_ratio);
  expect_bits_equal(first.fairness, second.fairness);
}

TEST(ReplayTest, ReplayMatchesDirectTraceSimulation) {
  // serving::replay is sugar over cluster::run_trace_replay with the
  // replay_config — the two paths must agree bit for bit.
  const RecordedTrace recorded = recorded_session(PolicyKind::kORR, 31, 200);
  auto d1 = hs::core::make_policy_dispatcher(PolicyKind::kORR, kSpeeds, 0.7);
  auto d2 = hs::core::make_policy_dispatcher(PolicyKind::kORR, kSpeeds, 0.7);

  const auto via_serving = hs::serving::replay(recorded, kSpeeds, *d1);
  const auto via_cluster = hs::cluster::run_trace_replay(
      hs::serving::replay_config(recorded, kSpeeds), recorded.trace, *d2);

  EXPECT_EQ(via_serving.total_arrivals, via_cluster.total_arrivals);
  EXPECT_EQ(via_serving.completed_jobs, via_cluster.completed_jobs);
  EXPECT_EQ(via_serving.events_fired, via_cluster.events_fired);
  expect_bits_equal(via_serving.mean_response_time,
                    via_cluster.mean_response_time);
  expect_bits_equal(via_serving.mean_response_ratio,
                    via_cluster.mean_response_ratio);
}

TEST(ReplayTest, SavedTraceReplaysIdenticallyToInMemoryTrace) {
  // The full pipeline: record → save → load → replay must equal
  // record → replay. Persistence adds nothing and loses nothing.
  const RecordedTrace recorded = recorded_session(PolicyKind::kORAN, 41, 250);
  const std::string path = temp_path("pipeline.trace");
  hs::serving::save_trace_binary(path, recorded);
  const RecordedTrace loaded = hs::serving::load_trace_binary(path);

  auto d1 = hs::core::make_policy_dispatcher(PolicyKind::kORAN, kSpeeds, 0.7);
  auto d2 = hs::core::make_policy_dispatcher(PolicyKind::kORAN, kSpeeds, 0.7);
  const auto from_memory = hs::serving::replay(recorded, kSpeeds, *d1);
  const auto from_disk = hs::serving::replay(loaded, kSpeeds, *d2);

  EXPECT_EQ(from_memory.completed_jobs, from_disk.completed_jobs);
  EXPECT_EQ(from_memory.events_fired, from_disk.events_fired);
  expect_bits_equal(from_memory.mean_response_time,
                    from_disk.mean_response_time);
  expect_bits_equal(from_memory.mean_response_ratio,
                    from_disk.mean_response_ratio);
}

// Golden pin: the replay of a fixed recorded session, so any change to
// the record format, the replay wiring, or the simulator's trace path
// shows up as an exact-value diff. Values produced by this test's own
// first run; see tests/test_determinism_golden.cpp for the idiom.
TEST(ReplayTest, GoldenRecordedSessionReplay) {
  const RecordedTrace recorded = recorded_session(PolicyKind::kORR, 77, 400);
  auto dispatcher =
      hs::core::make_policy_dispatcher(PolicyKind::kORR, kSpeeds, 0.7);
  const auto result = hs::serving::replay(recorded, kSpeeds, *dispatcher);

  EXPECT_EQ(result.total_arrivals, 400u);
  EXPECT_EQ(result.completed_jobs, 400u);
  EXPECT_EQ(result.mean_response_time, 0.029715624999999905);
  EXPECT_EQ(result.mean_response_ratio, 0.22874999999999934);
}

}  // namespace
