// Network fault model (cluster/netfaults.h) and its wiring into the
// cluster simulation: per-field validation, the deterministic partition
// timeline, heartbeat-based suspicion, exactly-once accounting under
// loss/duplication, and the Server::evict hook hedged dispatch relies
// on.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "cluster/netfaults.h"
#include "cluster/sim.h"
#include "core/policy.h"
#include "dispatch/fault_aware.h"
#include "dispatch/least_load.h"
#include "overload/circuit_breaker.h"
#include "queueing/fcfs_server.h"
#include "queueing/ps_server.h"
#include "queueing/rr_server.h"
#include "rng/rng.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace {

using hs::cluster::build_partition_timeline;
using hs::cluster::NetworkConfig;
using hs::cluster::Partition;
using hs::cluster::PartitionEvent;
using hs::cluster::SimulationConfig;
using hs::cluster::SimulationResult;

// ---------------------------------------------------------------------
// Validation: every rejection names the offending field (the PR 4/5
// error-message discipline).

std::string message_for(const NetworkConfig& config, size_t machines = 3,
                        double sim_time = 1000.0) {
  try {
    config.validate(machines, sim_time);
  } catch (const hs::util::CheckError& e) {
    return e.what();
  }
  return "";
}

TEST(NetFaultsValidation, DefaultConfigIsOffAndValid) {
  NetworkConfig config;
  EXPECT_FALSE(config.enabled());
  // The §4.2 feedback defaults moved here unchanged.
  EXPECT_DOUBLE_EQ(config.detection_interval, 1.0);
  EXPECT_DOUBLE_EQ(config.message_delay_mean, 0.05);
  EXPECT_EQ(message_for(config), "");
}

TEST(NetFaultsValidation, LinkFieldsAreRangeChecked) {
  NetworkConfig config;
  config.dispatch_link.loss = 1.0;
  EXPECT_NE(message_for(config).find(
                "network dispatch_link: loss must be within [0, 1), got 1"),
            std::string::npos)
      << message_for(config);

  config = {};
  config.dispatch_link.delay_mean = -0.5;
  EXPECT_NE(message_for(config).find(
                "network dispatch_link: delay_mean must be finite and >= 0"),
            std::string::npos);

  config = {};
  config.report_link.loss = -0.1;
  EXPECT_NE(message_for(config).find("network report_link: loss"),
            std::string::npos);

  config = {};
  config.dispatch_link.tail_prob = 1.5;
  config.dispatch_link.delay_mean = 1.0;
  EXPECT_NE(message_for(config).find("tail_prob must be within [0, 1]"),
            std::string::npos);

  config = {};
  config.dispatch_link.delay_mean = 1.0;
  config.dispatch_link.tail_factor = 0.5;
  EXPECT_NE(message_for(config).find("tail_factor must be >= 1"),
            std::string::npos);

  // A tail knob without a delay mean silently does nothing — reject it.
  config = {};
  config.dispatch_link.tail_prob = 0.2;
  EXPECT_NE(
      message_for(config).find("tail_prob without delay_mean has no effect"),
      std::string::npos);

  config = {};
  config.report_link.duplicate = 1.0;
  EXPECT_NE(message_for(config).find(
                "network report_link: duplicate must be within [0, 1)"),
            std::string::npos);
}

TEST(NetFaultsValidation, HeartbeatFieldsAreRangeChecked) {
  NetworkConfig config;
  config.heartbeat.interval = -1.0;
  EXPECT_NE(message_for(config).find(
                "network heartbeat: interval must be finite and >= 0"),
            std::string::npos);

  config = {};
  config.heartbeat.interval = 1.0;
  config.heartbeat.phi_threshold = 0.0;
  EXPECT_NE(message_for(config).find(
                "network heartbeat: phi_threshold must be > 0"),
            std::string::npos);

  config = {};
  config.heartbeat.interval = 1.0;
  config.heartbeat.ewma_alpha = 0.0;
  EXPECT_NE(message_for(config).find(
                "network heartbeat: ewma_alpha must be within (0, 1]"),
            std::string::npos);
  config.heartbeat.ewma_alpha = 1.5;
  EXPECT_NE(message_for(config).find("ewma_alpha"), std::string::npos);
}

TEST(NetFaultsValidation, FeedbackFieldsAreRangeChecked) {
  NetworkConfig config;
  config.detection_interval = -1.0;
  EXPECT_NE(message_for(config).find(
                "network detection_interval must be finite and >= 0"),
            std::string::npos);

  config = {};
  config.message_delay_mean = -0.05;
  EXPECT_NE(message_for(config).find(
                "network message_delay_mean must be finite and >= 0"),
            std::string::npos);
}

TEST(NetFaultsValidation, PartitionWindowsAreValidated) {
  NetworkConfig config;
  config.partitions.push_back({-1.0, 10.0, {0}});
  EXPECT_NE(message_for(config).find("network partitions[0]: start must be"),
            std::string::npos);

  config = {};
  config.partitions.push_back({0.0, 0.0, {0}});
  EXPECT_NE(
      message_for(config).find("network partitions[0]: duration must be > 0"),
      std::string::npos);

  config = {};
  config.partitions.push_back({2000.0, 10.0, {0}});
  EXPECT_NE(message_for(config).find(
                "network partitions[0]: starts at 2000, past sim_time 1000"),
            std::string::npos);

  config = {};
  config.partitions.push_back({0.0, 10.0, {}});
  EXPECT_NE(
      message_for(config).find("network partitions[0]: machine set is empty"),
      std::string::npos);

  config = {};
  config.partitions.push_back({0.0, 10.0, {7}});
  EXPECT_NE(message_for(config).find(
                "network partitions[0]: machine 7 out of range"),
            std::string::npos);

  // Overlap on one machine is rejected; the second partition is index 1
  // but the message reports the colliding windows.
  config = {};
  config.partitions.push_back({0.0, 20.0, {1}});
  config.partitions.push_back({10.0, 20.0, {1}});
  EXPECT_NE(message_for(config).find(
                "network partitions: overlapping windows on machine 1"),
            std::string::npos);

  // Back-to-back windows (no overlap) and overlap on *different*
  // machines are fine.
  config = {};
  config.partitions.push_back({0.0, 10.0, {1}});
  config.partitions.push_back({10.0, 10.0, {1}});
  config.partitions.push_back({5.0, 10.0, {2}});
  EXPECT_EQ(message_for(config), "");
}

// ---------------------------------------------------------------------
// Partition timeline.

TEST(NetFaults, PartitionTimelineIsSortedCloseBeforeOpen) {
  std::vector<Partition> partitions;
  partitions.push_back({10.0, 10.0, {0, 2}});  // [10, 20) on 0 and 2
  partitions.push_back({20.0, 10.0, {0}});     // back-to-back on 0
  partitions.push_back({15.0, 1.0, {1}});
  const std::vector<PartitionEvent> timeline =
      build_partition_timeline(partitions);
  ASSERT_EQ(timeline.size(), 8u);
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].time, timeline[i].time);
  }
  // At t=20 machine 0 has a close edge and an open edge; the close must
  // come first so back-to-back windows keep the machine isolated.
  size_t at20_first = 0;
  while (timeline[at20_first].time != 20.0 ||
         timeline[at20_first].machine != 0) {
    ++at20_first;
  }
  ASSERT_LT(at20_first + 1, timeline.size());
  EXPECT_FALSE(timeline[at20_first].isolated);
  EXPECT_TRUE(timeline[at20_first + 1].isolated);
  EXPECT_EQ(timeline[at20_first + 1].machine, 0u);
}

TEST(NetFaults, SampleDelayDrawsNothingWhenDisabled) {
  hs::cluster::LinkFaults link;  // delay_mean == 0
  link.loss = 0.3;
  hs::rng::Xoshiro256 a(42), b(42);
  EXPECT_DOUBLE_EQ(link.sample_delay(a), 0.0);
  // The generator state must be untouched: loss-only links perturb no
  // delay stream.
  EXPECT_DOUBLE_EQ(a.next_double(), b.next_double());
}

TEST(NetFaults, HeartbeatTimeoutMatchesPhiFormula) {
  hs::cluster::HeartbeatConfig hb;
  hb.interval = 1.0;
  hb.phi_threshold = 8.0;
  // φ(t) = t/(mean·ln 10) ⇒ timeout = φ*·mean·ln 10.
  EXPECT_NEAR(hb.timeout(2.0), 8.0 * 2.0 * std::log(10.0), 1e-12);
}

// ---------------------------------------------------------------------
// Simulation wiring.

SimulationConfig base_config(uint64_t seed) {
  SimulationConfig config;
  config.speeds = {2.0, 1.0};
  config.rho = 0.6;
  config.sim_time = 4000.0;
  config.warmup_frac = 0.1;
  config.seed = seed;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  return config;
}

void expect_conserved(const SimulationResult& result, uint64_t seed) {
  EXPECT_GT(result.total_arrivals, 0u);
  EXPECT_EQ(result.total_arrivals,
            result.total_completed + result.total_shed +
                result.total_dropped + result.in_flight_at_end)
      << "seed=" << seed << " arrivals=" << result.total_arrivals
      << " completed=" << result.total_completed
      << " shed=" << result.total_shed << " dropped=" << result.total_dropped
      << " in_flight=" << result.in_flight_at_end;
}

TEST(NetSim, LossyRunIsReproducible) {
  SimulationConfig config = base_config(2024);
  config.network.dispatch_link.loss = 0.1;
  config.network.dispatch_link.delay_mean = 0.05;
  config.network.dispatch_link.duplicate = 0.05;
  config.network.report_link.loss = 0.1;
  config.network.report_link.delay_mean = 0.02;
  config.network.heartbeat.interval = 1.0;
  config.faults.retry.max_attempts = 3;
  config.faults.retry.backoff_initial = 0.5;

  auto run = [&] {
    auto dispatcher = hs::core::make_fault_aware_dispatcher(
        hs::core::PolicyKind::kLeastLoad, config.speeds, config.rho);
    return hs::cluster::run_simulation(config, *dispatcher);
  };
  const SimulationResult a = run();
  const SimulationResult b = run();
  EXPECT_GT(a.msgs_lost, 0u);
  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.msgs_lost, b.msgs_lost);
  EXPECT_EQ(a.msgs_duplicated, b.msgs_duplicated);
  EXPECT_EQ(a.suspicions, b.suspicions);
  EXPECT_EQ(a.mean_response_time, b.mean_response_time);  // bitwise
  EXPECT_EQ(a.response_time_p99, b.response_time_p99);
  expect_conserved(a, 2024);
}

TEST(NetSim, LossIsConservedAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SimulationConfig config = base_config(seed * 101 + 7);
    config.network.dispatch_link.loss = 0.1;
    config.network.report_link.loss = 0.1;
    config.faults.retry.max_attempts = 3;
    config.faults.retry.backoff_initial = 0.5;
    auto dispatcher = hs::core::make_fault_aware_dispatcher(
        hs::core::PolicyKind::kLeastLoad, config.speeds, config.rho);
    const SimulationResult result =
        hs::cluster::run_simulation(config, *dispatcher);
    EXPECT_GT(result.msgs_lost, 0u) << "seed=" << seed;
    expect_conserved(result, seed);
  }
}

TEST(NetSim, DuplicatesAreDelivedOnceAndConserved) {
  SimulationConfig config = base_config(99);
  config.network.dispatch_link.duplicate = 0.4;
  config.network.dispatch_link.delay_mean = 0.1;
  config.network.report_link.duplicate = 0.4;
  config.network.report_link.delay_mean = 0.1;

  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kLeastLoad, config.speeds, config.rho);
  const SimulationResult result =
      hs::cluster::run_simulation(config, *dispatcher);
  EXPECT_GT(result.msgs_duplicated, 0u);
  // No loss, no crashes: after the drain every arrival completed exactly
  // once despite ~40% of messages arriving twice.
  EXPECT_EQ(result.total_arrivals, result.total_completed);
  EXPECT_EQ(result.in_flight_at_end, 0u);
  expect_conserved(result, 99);
}

TEST(NetSim, SuspicionReroutesAroundPartitionedMachine) {
  SimulationConfig config;
  config.speeds = {1.0, 1.0};
  config.rho = 0.5;
  config.sim_time = 5000.0;
  config.warmup_frac = 0.0;
  config.seed = 4242;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  // Machine 0 unreachable for [1000, 4000); no crash ever happens.
  config.network.partitions.push_back({1000.0, 3000.0, {0}});
  config.network.heartbeat.interval = 1.0;
  config.network.heartbeat.phi_threshold = 3.0;
  config.faults.retry.max_attempts = 4;
  config.faults.retry.backoff_initial = 0.5;

  auto fault_aware = std::make_unique<hs::dispatch::FaultAwareDispatcher>(
      std::make_unique<hs::dispatch::LeastLoadDispatcher>(config.speeds));
  auto* fault_aware_ptr = fault_aware.get();
  const SimulationResult result =
      hs::cluster::run_simulation(config, *fault_aware);

  // The detector suspected the silent machine and the decorator rerouted:
  // machine 0 handled far fewer than its no-partition half of the jobs.
  EXPECT_GE(result.suspicions, 1u);
  EXPECT_LT(result.machine_fractions[0], 0.4);
  EXPECT_GT(result.completed_jobs, 0u);
  // After the partition closed, heartbeats resumed and the recovery
  // report restored the machine.
  EXPECT_TRUE(fault_aware_ptr->available()[0]);
  expect_conserved(result, 4242);
}

TEST(NetSim, PartitionTripsBreakerWithoutAnyCrash) {
  SimulationConfig config;
  config.speeds = {1.0, 1.0, 1.0};
  config.rho = 0.5;
  config.sim_time = 3000.0;
  config.warmup_frac = 0.0;
  config.seed = 1717;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.network.partitions.push_back({500.0, 1000.0, {2}});
  config.network.heartbeat.interval = 1.0;
  config.network.heartbeat.phi_threshold = 3.0;
  config.faults.retry.max_attempts = 4;
  config.faults.retry.backoff_initial = 0.5;

  auto breaker = std::make_unique<hs::overload::CircuitBreakerDispatcher>(
      std::make_unique<hs::dispatch::LeastLoadDispatcher>(config.speeds),
      hs::overload::CircuitBreakerConfig{});
  auto* breaker_ptr = breaker.get();
  const SimulationResult result =
      hs::cluster::run_simulation(config, *breaker);

  // False suspicion during the partition must trip the breaker (fail-
  // fast routing), not be treated as a crash: no fault process is
  // configured, so no job was ever evicted from a machine.
  EXPECT_GE(result.suspicions, 1u);
  EXPECT_GE(breaker_ptr->trips(), 1u);
  EXPECT_GT(result.completed_jobs, 0u);
  expect_conserved(result, 1717);
}

// ---------------------------------------------------------------------
// Server::evict — the primitive first-completion-wins hedging rests on.

struct EvictHarness {
  hs::sim::Simulator sim;
  std::map<uint64_t, double> departures;

  template <typename ServerT, typename... Args>
  std::unique_ptr<ServerT> make(Args&&... args) {
    auto server =
        std::make_unique<ServerT>(sim, std::forward<Args>(args)...);
    server->set_completion_callback(
        [this](const hs::queueing::Completion& c) {
          departures[c.job.id] = c.departure_time;
        });
    return server;
  }
};

TEST(ServerEvict, FcfsEvictsRunningAndQueuedJobs) {
  EvictHarness h;
  auto server = h.make<hs::queueing::FcfsServer>(1.0, 0);
  auto* s = server.get();
  h.sim.schedule_at(0.0, [s] {
    s->arrive({1, 0.0, 10.0});
    s->arrive({2, 0.0, 1.0});
    s->arrive({3, 0.0, 1.0});
  });
  // Evict the queued job first, then the running one; service restarts
  // with the next waiter at the eviction time.
  h.sim.schedule_at(0.5, [s] { EXPECT_TRUE(s->evict(3)); });
  h.sim.schedule_at(1.0, [s] {
    EXPECT_TRUE(s->evict(1));
    EXPECT_FALSE(s->evict(99));
  });
  h.sim.run_all();
  ASSERT_EQ(h.departures.size(), 1u);
  EXPECT_DOUBLE_EQ(h.departures[2], 2.0);  // starts at 1.0 after eviction
  EXPECT_EQ(s->queue_length(), 0u);
}

TEST(ServerEvict, FcfsEvictionOfLastJobIdlesTheServer) {
  EvictHarness h;
  auto server = h.make<hs::queueing::FcfsServer>(1.0, 0);
  auto* s = server.get();
  h.sim.schedule_at(0.0, [s] { s->arrive({1, 0.0, 10.0}); });
  h.sim.schedule_at(2.0, [s] { EXPECT_TRUE(s->evict(1)); });
  h.sim.schedule_at(5.0, [s] { s->arrive({2, 5.0, 1.0}); });
  h.sim.run_all();
  EXPECT_DOUBLE_EQ(h.departures[2], 6.0);
  // Busy time banks the truncated busy period: [0, 2) plus [5, 6).
  EXPECT_NEAR(s->busy_time(), 3.0, 1e-9);
}

TEST(ServerEvict, PsEvictionSpeedsUpTheSurvivor) {
  EvictHarness h;
  auto server = h.make<hs::queueing::PsServer>(1.0, 0);
  auto* s = server.get();
  h.sim.schedule_at(0.0, [s] {
    s->arrive({1, 0.0, 2.0});
    s->arrive({2, 0.0, 2.0});
  });
  // Two PS jobs run at rate 1/2 each. At t=1 job 2 has 1.5 remaining;
  // alone it finishes at 2.5 instead of 4.0.
  h.sim.schedule_at(1.0, [s] {
    EXPECT_TRUE(s->evict(1));
    EXPECT_FALSE(s->evict(1));  // already gone
  });
  h.sim.run_all();
  ASSERT_EQ(h.departures.size(), 1u);
  EXPECT_NEAR(h.departures[2], 2.5, 1e-9);
}

TEST(ServerEvict, RrEvictsTheRunningJob) {
  EvictHarness h;
  auto server = h.make<hs::queueing::RrServer>(1.0, 0, 0.5);
  auto* s = server.get();
  h.sim.schedule_at(0.0, [s] {
    s->arrive({1, 0.0, 10.0});
    s->arrive({2, 0.0, 1.0});
  });
  h.sim.schedule_at(0.25, [s] { EXPECT_TRUE(s->evict(1)); });
  h.sim.run_all();
  ASSERT_EQ(h.departures.size(), 1u);
  EXPECT_NEAR(h.departures[2], 1.25, 1e-9);
}

TEST(ServerEvict, DefaultImplementationThrows) {
  struct MinimalServer : hs::queueing::Server {
    using Server::Server;
    bool arrive(const hs::queueing::Job&) override { return true; }
    [[nodiscard]] size_t queue_length() const override { return 0; }
    [[nodiscard]] double busy_time() const override { return 0.0; }
  };
  hs::sim::Simulator sim;
  MinimalServer server(sim, 1.0, 0);
  EXPECT_THROW((void)server.evict(1), hs::util::CheckError);
}

}  // namespace
