// Tests for the policy factory (Table 2 combinations).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "alloc/optimized.h"
#include "alloc/scheme.h"
#include "core/policy.h"
#include "util/check.h"

namespace {

using namespace hs::core;

const std::vector<double> kSpeeds = {1.0, 1.5, 2.0, 5.0, 10.0, 12.0};

TEST(Policy, NamesMatchPaper) {
  EXPECT_EQ(policy_name(PolicyKind::kWRAN), "WRAN");
  EXPECT_EQ(policy_name(PolicyKind::kORAN), "ORAN");
  EXPECT_EQ(policy_name(PolicyKind::kWRR), "WRR");
  EXPECT_EQ(policy_name(PolicyKind::kORR), "ORR");
  EXPECT_EQ(policy_name(PolicyKind::kLeastLoad), "LeastLoad");
}

TEST(Policy, StaticAndDynamicClassification) {
  for (PolicyKind kind : static_policies()) {
    EXPECT_FALSE(is_dynamic(kind));
  }
  EXPECT_TRUE(is_dynamic(PolicyKind::kLeastLoad));
  EXPECT_EQ(static_policies().size(), 4u);
  EXPECT_EQ(all_policies().size(), 5u);
}

TEST(Policy, OptimizedAllocationFlag) {
  EXPECT_FALSE(uses_optimized_allocation(PolicyKind::kWRAN));
  EXPECT_FALSE(uses_optimized_allocation(PolicyKind::kWRR));
  EXPECT_TRUE(uses_optimized_allocation(PolicyKind::kORAN));
  EXPECT_TRUE(uses_optimized_allocation(PolicyKind::kORR));
}

TEST(Policy, AllocationsMatchSchemes) {
  const double rho = 0.7;
  const auto weighted = hs::alloc::WeightedAllocation().compute(kSpeeds, rho);
  const auto optimized =
      hs::alloc::OptimizedAllocation().compute(kSpeeds, rho);
  const auto wrr = policy_allocation(PolicyKind::kWRR, kSpeeds, rho);
  const auto orr = policy_allocation(PolicyKind::kORR, kSpeeds, rho);
  for (size_t i = 0; i < kSpeeds.size(); ++i) {
    EXPECT_DOUBLE_EQ(wrr[i], weighted[i]);
    EXPECT_DOUBLE_EQ(orr[i], optimized[i]);
  }
}

TEST(Policy, AllocationForDynamicPolicyThrows) {
  EXPECT_THROW(policy_allocation(PolicyKind::kLeastLoad, kSpeeds, 0.7),
               hs::util::CheckError);
}

TEST(Policy, DispatcherKindsMatch) {
  auto wran = make_policy_dispatcher(PolicyKind::kWRAN, kSpeeds, 0.7);
  auto oran = make_policy_dispatcher(PolicyKind::kORAN, kSpeeds, 0.7);
  auto wrr = make_policy_dispatcher(PolicyKind::kWRR, kSpeeds, 0.7);
  auto orr = make_policy_dispatcher(PolicyKind::kORR, kSpeeds, 0.7);
  auto ll = make_policy_dispatcher(PolicyKind::kLeastLoad, kSpeeds, 0.7);
  EXPECT_EQ(wran->name(), "random");
  EXPECT_EQ(oran->name(), "random");
  EXPECT_EQ(wrr->name(), "round-robin");
  EXPECT_EQ(orr->name(), "round-robin");
  EXPECT_EQ(ll->name(), "least-load");
  EXPECT_TRUE(ll->uses_feedback());
  EXPECT_FALSE(orr->uses_feedback());
  EXPECT_EQ(orr->machine_count(), kSpeeds.size());
}

TEST(Policy, EstimateFactorForwarded) {
  // ORR with +10% load estimate differs from exact and moves towards WRR.
  const auto exact = policy_allocation(PolicyKind::kORR, kSpeeds, 0.7, 1.0);
  const auto over = policy_allocation(PolicyKind::kORR, kSpeeds, 0.7, 1.10);
  const auto weighted = policy_allocation(PolicyKind::kWRR, kSpeeds, 0.7);
  bool any_difference = false;
  for (size_t i = 0; i < kSpeeds.size(); ++i) {
    if (std::abs(exact[i] - over[i]) > 1e-9) {
      any_difference = true;
    }
    EXPECT_LE(std::abs(over[i] - weighted[i]),
              std::abs(exact[i] - weighted[i]) + 1e-12);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Policy, EstimateFactorIgnoredByWeighted) {
  const auto a = policy_allocation(PolicyKind::kWRR, kSpeeds, 0.7, 1.0);
  const auto b = policy_allocation(PolicyKind::kWRR, kSpeeds, 0.7, 1.15);
  for (size_t i = 0; i < kSpeeds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(Policy, FactoryProducesIdenticalFreshDispatchers) {
  const auto factory = policy_dispatcher_factory(PolicyKind::kORR, kSpeeds,
                                                 0.7);
  auto d1 = factory();
  auto d2 = factory();
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d2, nullptr);
  hs::rng::Xoshiro256 g1(1), g2(2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d1->pick(g1), d2->pick(g2));
  }
}

}  // namespace
