// Tests for the static dispatching strategies, including the paper's
// Algorithm 2 worked example.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "alloc/allocation.h"
#include "dispatch/cyclic.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::alloc::Allocation;
using hs::dispatch::CyclicDispatcher;
using hs::dispatch::RandomDispatcher;
using hs::dispatch::SmoothRoundRobinDispatcher;

std::vector<size_t> take(hs::dispatch::Dispatcher& d, size_t count,
                         uint64_t seed = 1) {
  hs::rng::Xoshiro256 gen(seed);
  std::vector<size_t> sequence;
  sequence.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    sequence.push_back(d.pick(gen));
  }
  return sequence;
}

// ------------------------------------------------------------ SmoothRR

TEST(SmoothRr, PaperWorkedExample) {
  // §3.2: fractions {1/8, 1/8, 1/4, 1/2} must yield the evenly spread
  // cycle c4 c3 c4 c* c4 c3 c4 c* where the two 1/8 machines alternate
  // between the c* slots. The paper prints c2 first and c1 second; the
  // two are symmetric (equal fractions) and our ascending scan picks c1
  // first — same schedule up to relabeling of the tied pair.
  SmoothRoundRobinDispatcher d(
      Allocation({1.0 / 8, 1.0 / 8, 1.0 / 4, 1.0 / 2}));
  const std::vector<size_t> expected = {3, 2, 3, 0, 3, 2, 3, 1,
                                        3, 2, 3, 0, 3, 2, 3, 1,
                                        3, 2, 3, 0, 3, 2, 3, 1};
  EXPECT_EQ(take(d, 24), expected);
}

TEST(SmoothRr, EqualFractionsDegenerateToRoundRobin) {
  SmoothRoundRobinDispatcher d(Allocation({0.25, 0.25, 0.25, 0.25}));
  const auto seq = take(d, 12);
  // Each machine must appear exactly once per cycle of 4.
  for (size_t cycle = 0; cycle < 3; ++cycle) {
    std::vector<bool> seen(4, false);
    for (size_t k = 0; k < 4; ++k) {
      seen[seq[cycle * 4 + k]] = true;
    }
    for (bool s : seen) {
      EXPECT_TRUE(s);
    }
  }
}

TEST(SmoothRr, ZeroFractionMachineNeverSelected) {
  SmoothRoundRobinDispatcher d(Allocation({0.5, 0.0, 0.5}));
  for (size_t machine : take(d, 1000)) {
    EXPECT_NE(machine, 1u);
  }
}

TEST(SmoothRr, CountsProportionalInShortWindows) {
  // The defining property: in any window, per-machine counts track the
  // fractions to within a small additive bound.
  const std::vector<double> fractions = {0.35, 0.22, 0.15, 0.12,
                                         0.04, 0.04, 0.04, 0.04};
  SmoothRoundRobinDispatcher d{Allocation(fractions)};
  std::vector<uint64_t> counts(fractions.size(), 0);
  hs::rng::Xoshiro256 gen(1);
  const size_t total = 5000;
  for (size_t k = 1; k <= total; ++k) {
    counts[d.pick(gen)]++;
    // Check the invariant at several window sizes.
    if (k == 50 || k == 500 || k == total) {
      for (size_t i = 0; i < fractions.size(); ++i) {
        const double expected = fractions[i] * static_cast<double>(k);
        EXPECT_NEAR(static_cast<double>(counts[i]), expected, 2.0)
            << "machine " << i << " after " << k << " jobs";
      }
    }
  }
}

TEST(SmoothRr, AssignCountsExposed) {
  SmoothRoundRobinDispatcher d(Allocation({0.5, 0.5}));
  take(d, 10);
  EXPECT_EQ(d.assigned(0) + d.assigned(1), 10u);
  EXPECT_EQ(d.assigned(0), 5u);
}

TEST(SmoothRr, ResetReproducesSequence) {
  SmoothRoundRobinDispatcher d(Allocation({0.3, 0.7}));
  const auto first = take(d, 100);
  d.reset();
  const auto second = take(d, 100);
  EXPECT_EQ(first, second);
}

TEST(SmoothRr, DeterministicAcrossGeneratorSeeds) {
  SmoothRoundRobinDispatcher d1(Allocation({0.6, 0.4}));
  SmoothRoundRobinDispatcher d2(Allocation({0.6, 0.4}));
  EXPECT_EQ(take(d1, 50, 111), take(d2, 50, 999));
}

TEST(SmoothRr, SmallFractionFirstJobsSpreadOut) {
  // §3.2: machines with identical small fractions must receive their
  // first jobs at staggered positions, not back to back.
  const std::vector<double> fractions = {0.35, 0.22, 0.15, 0.12,
                                         0.04, 0.04, 0.04, 0.04};
  SmoothRoundRobinDispatcher d{Allocation(fractions)};
  const auto seq = take(d, 100);
  std::map<size_t, size_t> first_position;
  for (size_t k = 0; k < seq.size(); ++k) {
    first_position.try_emplace(seq[k], k);
  }
  // Machines 4..7 share fraction 0.04 (period 25): their first jobs must
  // be pairwise separated by at least a few arrivals.
  for (size_t a = 4; a <= 7; ++a) {
    for (size_t b = a + 1; b <= 7; ++b) {
      ASSERT_TRUE(first_position.contains(a));
      ASSERT_TRUE(first_position.contains(b));
      const auto pa = static_cast<long>(first_position[a]);
      const auto pb = static_cast<long>(first_position[b]);
      EXPECT_GE(std::abs(pa - pb), 3) << "machines " << a << " and " << b;
    }
  }
}

TEST(SmoothRr, SingleMachineAlwaysSelected) {
  SmoothRoundRobinDispatcher d(Allocation({1.0}));
  for (size_t machine : take(d, 10)) {
    EXPECT_EQ(machine, 0u);
  }
}

TEST(SmoothRr, AllZeroButOne) {
  SmoothRoundRobinDispatcher d(Allocation({0.0, 1.0, 0.0}));
  for (size_t machine : take(d, 10)) {
    EXPECT_EQ(machine, 1u);
  }
}

TEST(SmoothRr, IrrationalFractionsStayProportional) {
  // Fractions that are not dyadic still must track proportions.
  const std::vector<double> fractions = {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
  SmoothRoundRobinDispatcher d{Allocation(fractions)};
  std::vector<uint64_t> counts(3, 0);
  hs::rng::Xoshiro256 gen(1);
  for (size_t k = 0; k < 3000; ++k) {
    counts[d.pick(gen)]++;
  }
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 2.0);
  }
}

// ------------------------------------------------------------- Random

TEST(RandomDispatcher, FrequenciesMatchFractions) {
  const std::vector<double> fractions = {0.1, 0.2, 0.3, 0.4};
  RandomDispatcher d{Allocation(fractions)};
  hs::rng::Xoshiro256 gen(7);
  std::vector<uint64_t> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    counts[d.pick(gen)]++;
  }
  for (size_t i = 0; i < fractions.size(); ++i) {
    const double expected = fractions[i] * n;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, 0.03 * expected);
  }
}

TEST(RandomDispatcher, ZeroFractionNeverSelected) {
  RandomDispatcher d(Allocation({0.5, 0.0, 0.5}));
  hs::rng::Xoshiro256 gen(3);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_NE(d.pick(gen), 1u);
  }
}

TEST(RandomDispatcher, SameSeedSameSequence) {
  RandomDispatcher d1(Allocation({0.3, 0.7}));
  RandomDispatcher d2(Allocation({0.3, 0.7}));
  hs::rng::Xoshiro256 g1(5), g2(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(d1.pick(g1), d2.pick(g2));
  }
}

TEST(RandomDispatcher, HigherVarianceThanSmoothRr) {
  // The motivation for Algorithm 2: over fixed windows, random
  // dispatching deviates from the target fractions far more.
  const std::vector<double> fractions = {0.5, 0.5};
  RandomDispatcher random_d{Allocation(fractions)};
  SmoothRoundRobinDispatcher rr_d{Allocation(fractions)};
  hs::rng::Xoshiro256 gen(11);

  auto window_deviation = [&](hs::dispatch::Dispatcher& d) {
    double total_dev = 0.0;
    const int windows = 200;
    const int window_size = 50;
    for (int w = 0; w < windows; ++w) {
      int count0 = 0;
      for (int k = 0; k < window_size; ++k) {
        if (d.pick(gen) == 0) {
          ++count0;
        }
      }
      const double actual = static_cast<double>(count0) / window_size;
      total_dev += (actual - 0.5) * (actual - 0.5) * 2.0;
    }
    return total_dev / windows;
  };

  const double dev_random = window_deviation(random_d);
  const double dev_rr = window_deviation(rr_d);
  EXPECT_LT(dev_rr, 0.1 * dev_random);
}

// ------------------------------------------------------------- Cyclic

TEST(CyclicDispatcher, CyclesThroughActiveMachines) {
  CyclicDispatcher d(Allocation({0.25, 0.25, 0.25, 0.25}));
  const auto seq = take(d, 8);
  EXPECT_EQ(seq, (std::vector<size_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(CyclicDispatcher, SkipsZeroFractionMachines) {
  CyclicDispatcher d(Allocation({0.5, 0.0, 0.5}));
  const auto seq = take(d, 4);
  EXPECT_EQ(seq, (std::vector<size_t>{0, 2, 0, 2}));
}

TEST(CyclicDispatcher, ResetRestartsCycle) {
  CyclicDispatcher d(Allocation({0.5, 0.5}));
  take(d, 3);
  d.reset();
  EXPECT_EQ(take(d, 2), (std::vector<size_t>{0, 1}));
}

TEST(DispatcherInterface, NamesAndFeedbackFlags) {
  SmoothRoundRobinDispatcher rr(Allocation({1.0}));
  RandomDispatcher random_d(Allocation({1.0}));
  CyclicDispatcher cyclic(Allocation({1.0}));
  EXPECT_EQ(rr.name(), "round-robin");
  EXPECT_EQ(random_d.name(), "random");
  EXPECT_EQ(cyclic.name(), "cyclic");
  EXPECT_FALSE(rr.uses_feedback());
  EXPECT_FALSE(random_d.uses_feedback());
  EXPECT_FALSE(cyclic.uses_feedback());
}

}  // namespace
