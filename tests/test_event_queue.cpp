// Tests for the cancellable, reschedulable typed-event heap.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rng/rng.h"
#include "sim/event_queue.h"
#include "util/check.h"

namespace {

using hs::sim::EventArgs;
using hs::sim::EventHandle;
using hs::sim::EventQueue;
using hs::sim::EventTarget;

/// Test target that records every (kind, args-as-int) it receives.
class RecordingTarget final : public EventTarget {
 public:
  void on_event(uint32_t kind, const EventArgs& args) override {
    kinds.push_back(kind);
    values.push_back(args.unpack<int>());
  }
  std::vector<uint32_t> kinds;
  std::vector<int> values;
};

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) {
    q.pop().fire();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TypedEventsDeliverKindAndArgs) {
  EventQueue q;
  RecordingTarget target;
  q.push(2.0, target, 7, EventArgs::pack(21));
  q.push(1.0, target, 3, EventArgs::pack(10));
  while (!q.empty()) {
    q.pop().fire();
  }
  EXPECT_EQ(target.kinds, (std::vector<uint32_t>{3, 7}));
  EXPECT_EQ(target.values, (std::vector<int>{10, 21}));
}

TEST(EventQueue, EventArgsRoundTripsTriviallyCopyableStructs) {
  struct Payload {
    uint64_t id;
    double a;
    double b;
    uint32_t flag;
  };
  const Payload in{42, 1.5, -2.25, 7};
  const EventArgs packed = EventArgs::pack(in);
  const Payload out = packed.unpack<Payload>();
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.a, in.a);
  EXPECT_EQ(out.b, in.b);
  EXPECT_EQ(out.flag, in.flag);
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fire();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(7.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsFalse) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireIsFalse) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  q.pop().fire();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, DefaultHandleCancelIsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsFalse) {
  EventQueue q;
  EventHandle h1 = q.push(1.0, [] {});
  q.pop().fire();              // frees slot
  q.push(2.0, [] {});          // reuses it
  EXPECT_FALSE(q.cancel(h1));  // old generation must not cancel new event
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelledHeadRemovedEagerly) {
  EventQueue q;
  bool fired_late = false;
  EventHandle head = q.push(1.0, [] { FAIL() << "cancelled event fired"; });
  q.push(2.0, [&] { fired_late = true; });
  q.cancel(head);
  EXPECT_EQ(q.size(), 1u);
  auto event = q.pop();
  EXPECT_DOUBLE_EQ(event.time, 2.0);
  event.fire();
  EXPECT_TRUE(fired_late);
}

TEST(EventQueue, NextTimeAfterHeadCancelled) {
  EventQueue q;
  EventHandle head = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(head);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  EventHandle h1 = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)(q.pop()), hs::util::CheckError);
}

TEST(EventQueue, NextTimeEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)(q.next_time()), hs::util::CheckError);
}

TEST(EventQueue, CountersTrackActivity) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  EventHandle moved = q.push(2.0, [] {});
  q.cancel(h);
  q.reschedule(moved, 3.0);
  q.pop().fire();
  EXPECT_EQ(q.total_scheduled(), 2u);
  EXPECT_EQ(q.total_cancelled(), 1u);
  EXPECT_EQ(q.total_rescheduled(), 1u);
}

// ---- reschedule() ----

TEST(EventQueue, RescheduleMovesEventLater) {
  EventQueue q;
  std::vector<int> fired;
  EventHandle h = q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  EXPECT_TRUE(q.reschedule(h, 3.0));
  std::vector<double> times;
  while (!q.empty()) {
    auto event = q.pop();
    times.push_back(event.time);
    event.fire();
  }
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
  EXPECT_EQ(times, (std::vector<double>{2.0, 3.0}));
}

TEST(EventQueue, RescheduleMovesEventEarlier) {
  EventQueue q;
  std::vector<int> fired;
  q.push(2.0, [&] { fired.push_back(2); });
  EventHandle h = q.push(5.0, [&] { fired.push_back(5); });
  EXPECT_TRUE(q.reschedule(h, 1.0));
  while (!q.empty()) {
    q.pop().fire();
  }
  EXPECT_EQ(fired, (std::vector<int>{5, 2}));
}

TEST(EventQueue, RescheduleKeepsHandleValid) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.reschedule(h, 4.0));
  EXPECT_TRUE(q.reschedule(h, 2.0));  // same handle, twice
  EXPECT_TRUE(q.cancel(h));           // and still cancellable
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, RescheduleAfterFireIsFalse) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  q.pop().fire();
  EXPECT_FALSE(q.reschedule(h, 2.0));
}

TEST(EventQueue, RescheduleAfterCancelIsFalse) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  q.cancel(h);
  EXPECT_FALSE(q.reschedule(h, 2.0));
  EXPECT_FALSE(q.reschedule(EventHandle{}, 2.0));
}

TEST(EventQueue, RescheduleStaleHandleAfterSlotReuseIsFalse) {
  EventQueue q;
  EventHandle h1 = q.push(1.0, [] {});
  q.pop().fire();                      // frees the slot
  EventHandle h2 = q.push(2.0, [] {});  // reuses it
  EXPECT_FALSE(q.reschedule(h1, 9.0));  // stale handle must not move h2
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_TRUE(q.cancel(h2));
}

// A rescheduled event must tie-break among equal-time events exactly as
// if it had been cancelled and re-pushed: it fires after every event
// already scheduled at that time, including ones scheduled before it
// originally existed. This pins the simulator's replication order.
TEST(EventQueue, ReschedulePreservesCancelPushFifoOrder) {
  EventQueue fifo;
  std::vector<int> fired;
  fifo.push(5.0, [&] { fired.push_back(0); });
  EventHandle h = fifo.push(1.0, [&] { fired.push_back(1); });
  fifo.push(5.0, [&] { fired.push_back(2); });
  EXPECT_TRUE(fifo.reschedule(h, 5.0));  // lands at 5.0, after 0 and 2
  fifo.push(5.0, [&] { fired.push_back(3); });  // scheduled after the move
  while (!fifo.empty()) {
    fifo.pop().fire();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 2, 1, 3}));
}

// ---- stress: heavy cancel + slot reuse interleaving ----

TEST(EventQueue, StressSlotReuseGenerationSafety) {
  hs::rng::Xoshiro256 gen(99);
  EventQueue q;
  std::vector<EventHandle> stale;  // handles whose events fired/cancelled
  int fired_count = 0;
  for (int round = 0; round < 2000; ++round) {
    EventHandle live = q.push(gen.uniform(0.0, 10.0), [&] { ++fired_count; });
    // Stale handles must never cancel or move the new occupant of their
    // recycled slot.
    for (const EventHandle& h : stale) {
      ASSERT_FALSE(q.cancel(h));
      ASSERT_FALSE(q.reschedule(h, 1.0));
    }
    if (gen.next_double() < 0.5) {
      ASSERT_TRUE(q.reschedule(live, gen.uniform(0.0, 10.0)));
    }
    if (gen.next_double() < 0.5) {
      ASSERT_TRUE(q.cancel(live));
    } else {
      q.pop().fire();
    }
    stale.push_back(live);
    if (stale.size() > 64) {
      stale.erase(stale.begin());
    }
  }
  EXPECT_TRUE(q.empty());
  EXPECT_GT(fired_count, 0);
}

// ---- randomized differential test against a naive reference ----

// Reference implementation: a sorted-by-(time, seq) vector, scanned
// linearly. Mirrors push/cancel/reschedule/pop semantics exactly.
class ReferenceQueue {
 public:
  struct Entry {
    double time;
    uint64_t seq;
    int id;
  };

  void push(double time, int id) { entries_.push_back({time, seq_++, id}); }

  bool cancel(int id) {
    const auto it = find(id);
    if (it == entries_.end()) {
      return false;
    }
    entries_.erase(it);
    return true;
  }

  bool reschedule(int id, double new_time) {
    const auto it = find(id);
    if (it == entries_.end()) {
      return false;
    }
    it->time = new_time;
    it->seq = seq_++;  // cancel+push tie-break semantics
    return true;
  }

  Entry pop() {
    auto best = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->time < best->time ||
          (it->time == best->time && it->seq < best->seq)) {
        best = it;
      }
    }
    const Entry top = *best;
    entries_.erase(best);
    return top;
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry>::iterator find(int id) {
    return std::find_if(entries_.begin(), entries_.end(),
                        [id](const Entry& e) { return e.id == id; });
  }

  std::vector<Entry> entries_;
  uint64_t seq_ = 0;
};

TEST(EventQueue, StressMatchesSortedVectorReference) {
  hs::rng::Xoshiro256 gen(2024);
  EventQueue q;
  RecordingTarget target;
  ReferenceQueue ref;
  std::vector<EventHandle> handles;  // indexed by event id
  std::vector<bool> live;
  int next_id = 0;

  for (int step = 0; step < 60000; ++step) {
    const double action = gen.next_double();
    if (action < 0.45 || q.empty()) {
      const double time = gen.uniform(0.0, 1000.0);
      const int id = next_id++;
      handles.push_back(q.push(time, target, 0, EventArgs::pack(id)));
      live.push_back(true);
      ref.push(time, id);
    } else if (action < 0.60) {
      // Cancel a random event (often already dead).
      const size_t idx = gen.next_below(handles.size());
      const bool ok = q.cancel(handles[idx]);
      ASSERT_EQ(ok, ref.cancel(static_cast<int>(idx)));
      if (ok) {
        live[idx] = false;
      }
    } else if (action < 0.75) {
      // Reschedule a random event (often already dead).
      const size_t idx = gen.next_below(handles.size());
      const double new_time = gen.uniform(0.0, 1000.0);
      const bool ok = q.reschedule(handles[idx], new_time);
      ASSERT_EQ(ok, ref.reschedule(static_cast<int>(idx), new_time));
    } else {
      auto event = q.pop();
      const ReferenceQueue::Entry expected = ref.pop();
      ASSERT_DOUBLE_EQ(event.time, expected.time);
      event.fire();
      ASSERT_EQ(target.values.back(), expected.id);
      live[static_cast<size_t>(expected.id)] = false;
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  // Drain both and compare the full remaining order.
  while (!q.empty()) {
    auto event = q.pop();
    const ReferenceQueue::Entry expected = ref.pop();
    ASSERT_DOUBLE_EQ(event.time, expected.time);
    event.fire();
    ASSERT_EQ(target.values.back(), expected.id);
  }
  EXPECT_TRUE(ref.empty());
}

}  // namespace
