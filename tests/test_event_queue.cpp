// Tests for the cancellable event heap.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "rng/rng.h"
#include "sim/event_queue.h"
#include "util/check.h"

namespace {

using hs::sim::EventHandle;
using hs::sim::EventQueue;

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto [time, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().second();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(7.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsFalse) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireIsFalse) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, DefaultHandleCancelIsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsFalse) {
  EventQueue q;
  EventHandle h1 = q.push(1.0, [] {});
  q.pop().second();           // frees slot
  q.push(2.0, [] {});         // reuses it
  EXPECT_FALSE(q.cancel(h1));  // old generation must not cancel new event
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelledHeadSkippedOnPop) {
  EventQueue q;
  bool fired_late = false;
  EventHandle head = q.push(1.0, [] { FAIL() << "cancelled event fired"; });
  q.push(2.0, [&] { fired_late = true; });
  q.cancel(head);
  auto [time, fn] = q.pop();
  EXPECT_DOUBLE_EQ(time, 2.0);
  fn();
  EXPECT_TRUE(fired_late);
}

TEST(EventQueue, NextTimeAfterHeadCancelled) {
  EventQueue q;
  EventHandle head = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(head);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  EventHandle h1 = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)(q.pop()), hs::util::CheckError);
}

TEST(EventQueue, NextTimeEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)(q.next_time()), hs::util::CheckError);
}

TEST(EventQueue, NullCallbackThrows) {
  EventQueue q;
  EXPECT_THROW((void)(q.push(1.0, nullptr)), hs::util::CheckError);
}

TEST(EventQueue, CountersTrackActivity) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(h);
  q.pop().second();
  EXPECT_EQ(q.total_scheduled(), 2u);
  EXPECT_EQ(q.total_cancelled(), 1u);
}

// Randomized differential test against std::priority_queue: interleaved
// pushes, cancels and pops must produce the reference pop order.
TEST(EventQueue, StressMatchesReferenceHeap) {
  hs::rng::Xoshiro256 gen(2024);
  EventQueue q;
  // Reference: multiset of (time, seq) with cancelled set.
  struct Ref {
    double time;
    uint64_t seq;
  };
  auto cmp = [](const Ref& a, const Ref& b) {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  };
  std::priority_queue<Ref, std::vector<Ref>, decltype(cmp)> ref(cmp);
  std::vector<bool> ref_cancelled;
  std::vector<EventHandle> handles;
  std::vector<bool> handle_done;
  uint64_t seq = 0;

  auto ref_pop_live = [&]() -> Ref {
    for (;;) {
      Ref top = ref.top();
      ref.pop();
      if (!ref_cancelled[top.seq]) {
        return top;
      }
    }
  };

  for (int step = 0; step < 50000; ++step) {
    const double action = gen.next_double();
    if (action < 0.55 || q.empty()) {
      const double time = gen.uniform(0.0, 1000.0);
      const uint64_t my_seq = seq++;
      handles.push_back(q.push(time, [] {}));
      handle_done.push_back(false);
      ref.push(Ref{time, my_seq});
      ref_cancelled.push_back(false);
    } else if (action < 0.75) {
      // Cancel a random not-yet-done event (may already be cancelled).
      const size_t idx = gen.next_below(handles.size());
      if (!handle_done[idx]) {
        const bool ok = q.cancel(handles[idx]);
        if (ok) {
          ref_cancelled[idx] = true;
          handle_done[idx] = true;
        }
      }
    } else {
      auto [time, fn] = q.pop();
      const Ref expected = ref_pop_live();
      ASSERT_DOUBLE_EQ(time, expected.time);
      handle_done[expected.seq] = true;
    }
  }
  // Drain both and compare.
  while (!q.empty()) {
    auto [time, fn] = q.pop();
    const Ref expected = ref_pop_live();
    ASSERT_DOUBLE_EQ(time, expected.time);
  }
}

}  // namespace
