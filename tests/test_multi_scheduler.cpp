// Tests for the multi-scheduler simulation variant (replicated
// front-ends with no shared state).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/sim.h"
#include "core/policy.h"
#include "dispatch/smooth_rr.h"
#include "util/check.h"

namespace {

using namespace hs::cluster;
using hs::core::make_policy_dispatcher;
using hs::core::PolicyKind;

SimulationConfig quick_config(std::vector<double> speeds, double rho) {
  SimulationConfig config;
  config.speeds = std::move(speeds);
  config.rho = rho;
  config.sim_time = 40000.0;
  config.warmup_frac = 0.2;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.seed = 13;
  return config;
}

TEST(MultiScheduler, SingleSchedulerEqualsPlainRun) {
  const auto config = quick_config({1.0, 4.0}, 0.6);
  auto d1 = make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.6);
  const auto plain = run_simulation(config, *d1);
  auto d2 = make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.6);
  const auto multi = run_simulation_multi(config, {d2.get()});
  EXPECT_EQ(plain.completed_jobs, multi.completed_jobs);
  EXPECT_DOUBLE_EQ(plain.mean_response_time, multi.mean_response_time);
}

TEST(MultiScheduler, SplitsWorkAcrossSchedulers) {
  const auto config = quick_config({1.0, 1.0, 2.0}, 0.5);
  std::vector<std::unique_ptr<hs::dispatch::Dispatcher>> owners;
  std::vector<hs::dispatch::Dispatcher*> schedulers;
  for (int s = 0; s < 4; ++s) {
    owners.push_back(
        make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.5));
    schedulers.push_back(owners.back().get());
  }
  const auto result = run_simulation_multi(config, schedulers,
                                           SchedulerSplit::kRoundRobin);
  EXPECT_GT(result.completed_jobs, 0u);
  // With a round-robin split, each ORR instance dispatched ~1/4 of jobs.
  for (const auto& owner : owners) {
    auto* rr = dynamic_cast<hs::dispatch::SmoothRoundRobinDispatcher*>(
        owner.get());
    ASSERT_NE(rr, nullptr);
    uint64_t handled = 0;
    for (size_t m = 0; m < config.speeds.size(); ++m) {
      handled += rr->assigned(m);
    }
    EXPECT_NEAR(static_cast<double>(handled),
                static_cast<double>(result.dispatched_jobs) / 4.0 / 0.8,
                0.1 * static_cast<double>(handled));
  }
}

TEST(MultiScheduler, AggregateFractionsStillMatchAllocation) {
  // k independent ORR schedulers still deliver the optimized fractions
  // in aggregate (each one does individually).
  const auto config = quick_config({1.0, 1.0, 6.0}, 0.6);
  const auto allocation =
      hs::core::policy_allocation(PolicyKind::kORR, config.speeds, 0.6);
  std::vector<std::unique_ptr<hs::dispatch::Dispatcher>> owners;
  std::vector<hs::dispatch::Dispatcher*> schedulers;
  for (int s = 0; s < 3; ++s) {
    owners.push_back(
        make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.6));
    schedulers.push_back(owners.back().get());
  }
  const auto result = run_simulation_multi(config, schedulers);
  for (size_t m = 0; m < config.speeds.size(); ++m) {
    EXPECT_NEAR(result.machine_fractions[m], allocation[m], 0.02)
        << "machine " << m;
  }
}

TEST(MultiScheduler, LeastLoadViewsArePerScheduler) {
  // Splitting least-load across schedulers starves each one of half the
  // departure information, so performance must degrade vs one scheduler.
  const auto config = quick_config({1.0, 1.0, 1.0, 1.0, 10.0, 10.0}, 0.8);
  auto single = make_policy_dispatcher(PolicyKind::kLeastLoad,
                                       config.speeds, 0.8);
  const auto one = run_simulation(config, *single);

  std::vector<std::unique_ptr<hs::dispatch::Dispatcher>> owners;
  std::vector<hs::dispatch::Dispatcher*> schedulers;
  for (int s = 0; s < 8; ++s) {
    owners.push_back(make_policy_dispatcher(PolicyKind::kLeastLoad,
                                            config.speeds, 0.8));
    schedulers.push_back(owners.back().get());
  }
  const auto eight = run_simulation_multi(config, schedulers);
  EXPECT_GT(eight.mean_response_ratio, one.mean_response_ratio);
}

TEST(MultiScheduler, DeterministicGivenSeed) {
  const auto config = quick_config({1.0, 4.0}, 0.6);
  auto run_once = [&] {
    std::vector<std::unique_ptr<hs::dispatch::Dispatcher>> owners;
    std::vector<hs::dispatch::Dispatcher*> schedulers;
    for (int s = 0; s < 2; ++s) {
      owners.push_back(
          make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.6));
      schedulers.push_back(owners.back().get());
    }
    return run_simulation_multi(config, schedulers);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.mean_response_time, b.mean_response_time);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
}

TEST(MultiScheduler, RejectsInvalidSchedulers) {
  const auto config = quick_config({1.0}, 0.5);
  EXPECT_THROW((void)run_simulation_multi(config, {}),
               hs::util::CheckError);
  EXPECT_THROW((void)run_simulation_multi(config, {nullptr}),
               hs::util::CheckError);
  auto wrong = make_policy_dispatcher(PolicyKind::kWRR, {1.0, 2.0}, 0.5);
  EXPECT_THROW((void)run_simulation_multi(config, {wrong.get()}),
               hs::util::CheckError);
}

}  // namespace
