// Integration tests for the full cluster simulation harness.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "cluster/config.h"
#include "cluster/sim.h"
#include "core/policy.h"
#include "dispatch/least_load.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "queueing/mm1.h"
#include "util/check.h"

namespace {

using namespace hs::cluster;
using hs::alloc::Allocation;
using hs::core::make_policy_dispatcher;
using hs::core::PolicyKind;

// A fast workload: Poisson arrivals, exponential unit-mean sizes.
hs::workload::WorkloadSpec fast_workload() {
  hs::workload::WorkloadSpec spec;
  spec.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  spec.size_kind = hs::workload::SizeKind::kExponential;
  spec.fixed_or_mean_size = 1.0;
  return spec;
}

SimulationConfig base_config(std::vector<double> speeds, double rho,
                             double sim_time = 50000.0) {
  SimulationConfig config;
  config.speeds = std::move(speeds);
  config.workload = fast_workload();
  config.rho = rho;
  config.sim_time = sim_time;
  config.warmup_frac = 0.2;
  config.seed = 99;
  return config;
}

TEST(ClusterSim, SingleMachineMatchesMm1Theory) {
  // One speed-1 machine at ρ=0.7 with M/M workload: the full harness
  // must reproduce T̄ = 1/(μ−λ) = 1/0.3.
  auto config = base_config({1.0}, 0.7, 200000.0);
  auto dispatcher =
      make_policy_dispatcher(PolicyKind::kWRR, config.speeds, config.rho);
  const auto result = run_simulation(config, *dispatcher);
  const double expected =
      hs::queueing::mm1::ps_mean_response_time(0.7, 1.0);
  EXPECT_GT(result.completed_jobs, 50000u);
  EXPECT_NEAR(result.mean_response_time, expected, 0.06 * expected);
  EXPECT_NEAR(result.mean_response_ratio, expected, 0.06 * expected);
  EXPECT_NEAR(result.machine_utilizations[0], 0.7, 0.03);
}

TEST(ClusterSim, LambdaDerivedFromRho) {
  auto config = base_config({1.0, 3.0}, 0.5);
  // λ = ρ·Σs/E[size] = 0.5·4/1.
  EXPECT_NEAR(config.lambda(), 2.0, 1e-12);
}

TEST(ClusterSim, UtilizationsTrackAllocation) {
  auto config = base_config({1.0, 3.0}, 0.6, 100000.0);
  hs::dispatch::RandomDispatcher dispatcher(Allocation({0.25, 0.75}));
  const auto result = run_simulation(config, dispatcher);
  // Weighted fractions equalize utilization at ρ.
  EXPECT_NEAR(result.machine_utilizations[0], 0.6, 0.04);
  EXPECT_NEAR(result.machine_utilizations[1], 0.6, 0.04);
}

TEST(ClusterSim, MachineFractionsMatchDispatcher) {
  auto config = base_config({1.0, 1.0, 2.0}, 0.5, 50000.0);
  hs::dispatch::SmoothRoundRobinDispatcher dispatcher(
      Allocation({0.25, 0.25, 0.5}));
  const auto result = run_simulation(config, dispatcher);
  EXPECT_NEAR(result.machine_fractions[0], 0.25, 0.01);
  EXPECT_NEAR(result.machine_fractions[1], 0.25, 0.01);
  EXPECT_NEAR(result.machine_fractions[2], 0.50, 0.01);
  const double sum = std::accumulate(result.machine_fractions.begin(),
                                     result.machine_fractions.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ClusterSim, DeterministicGivenSeed) {
  auto config = base_config({1.0, 5.0}, 0.7);
  auto d1 = make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.7);
  auto d2 = make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.7);
  const auto r1 = run_simulation(config, *d1);
  const auto r2 = run_simulation(config, *d2);
  EXPECT_EQ(r1.completed_jobs, r2.completed_jobs);
  EXPECT_DOUBLE_EQ(r1.mean_response_time, r2.mean_response_time);
  EXPECT_DOUBLE_EQ(r1.fairness, r2.fairness);
}

TEST(ClusterSim, DifferentSeedsDiffer) {
  auto config = base_config({1.0, 5.0}, 0.7);
  auto d1 = make_policy_dispatcher(PolicyKind::kWRAN, config.speeds, 0.7);
  const auto r1 = run_simulation(config, *d1);
  config.seed = 100;
  auto d2 = make_policy_dispatcher(PolicyKind::kWRAN, config.speeds, 0.7);
  const auto r2 = run_simulation(config, *d2);
  EXPECT_NE(r1.mean_response_time, r2.mean_response_time);
}

TEST(ClusterSim, WarmupJobsExcluded) {
  auto config = base_config({1.0}, 0.5, 20000.0);
  config.warmup_frac = 0.5;
  auto with_warmup = make_policy_dispatcher(PolicyKind::kWRR, config.speeds,
                                            config.rho);
  const auto result = run_simulation(config, *with_warmup);
  // Roughly half the arrivals fall in the measurement window.
  const double expected_jobs = config.lambda() * config.sim_time * 0.5;
  EXPECT_NEAR(static_cast<double>(result.dispatched_jobs), expected_jobs,
              0.1 * expected_jobs);
}

TEST(ClusterSim, OptimizedAllocationBeatsWeightedOnSkewedCluster) {
  // The paper's core claim, in miniature: {16×1, 2×10} at ρ=0.7.
  auto config = base_config(
      ClusterConfig::paper_skewness(10.0).speeds(), 0.7, 100000.0);
  auto wran = make_policy_dispatcher(PolicyKind::kWRAN, config.speeds, 0.7);
  auto orr = make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.7);
  const auto weighted = run_simulation(config, *wran);
  const auto optimized = run_simulation(config, *orr);
  EXPECT_LT(optimized.mean_response_ratio,
            0.85 * weighted.mean_response_ratio);
  EXPECT_LT(optimized.fairness, weighted.fairness);
}

TEST(ClusterSim, LeastLoadBeatsStaticPolicies) {
  auto config = base_config(
      ClusterConfig::paper_skewness(5.0).speeds(), 0.7, 100000.0);
  auto orr = make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.7);
  auto ll =
      make_policy_dispatcher(PolicyKind::kLeastLoad, config.speeds, 0.7);
  const auto static_best = run_simulation(config, *orr);
  const auto dynamic = run_simulation(config, *ll);
  EXPECT_LT(dynamic.mean_response_ratio, static_best.mean_response_ratio);
}

TEST(ClusterSim, LeastLoadFeedbackDelayMatters) {
  // With a huge feedback delay the scheduler's estimates go stale and
  // performance degrades towards (or below) blind dispatching.
  auto config = base_config({1.0, 1.0, 10.0, 10.0}, 0.8, 60000.0);
  auto prompt =
      make_policy_dispatcher(PolicyKind::kLeastLoad, config.speeds, 0.8);
  const auto fast_feedback = run_simulation(config, *prompt);

  config.network.detection_interval = 200.0;
  config.network.message_delay_mean = 50.0;
  auto stale =
      make_policy_dispatcher(PolicyKind::kLeastLoad, config.speeds, 0.8);
  const auto slow_feedback = run_simulation(config, *stale);
  EXPECT_GT(slow_feedback.mean_response_ratio,
            fast_feedback.mean_response_ratio);
}

TEST(ClusterSim, DeviationTrackingProducesSeries) {
  auto config = base_config({1.0, 1.0}, 0.5, 12000.0);
  config.deviation_expected = {0.5, 0.5};
  config.deviation_interval = 120.0;
  auto rr = make_policy_dispatcher(PolicyKind::kWRR, config.speeds, 0.5);
  const auto result = run_simulation(config, *rr);
  EXPECT_EQ(result.deviations.size(), 100u);  // 12000 / 120
  for (double d : result.deviations) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 0.5 + 1e-12);  // Σαᵢ² bound for equal fractions
  }
}

TEST(ClusterSim, RoundRobinDeviationBelowRandom) {
  // Figure 2's claim as an integration test.
  auto config = base_config({1.0, 1.0, 2.0, 4.0}, 0.6, 60000.0);
  const Allocation fractions({0.125, 0.125, 0.25, 0.5});
  config.deviation_expected = fractions.fractions();
  hs::dispatch::SmoothRoundRobinDispatcher rr(fractions);
  hs::dispatch::RandomDispatcher random_d(fractions);
  const auto rr_result = run_simulation(config, rr);
  const auto rand_result = run_simulation(config, random_d);
  const auto mean_of = [](const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  };
  EXPECT_LT(mean_of(rr_result.deviations),
            0.25 * mean_of(rand_result.deviations));
}

TEST(ClusterSim, TraceReplayIsExactlyReproducible) {
  const auto trace = hs::workload::JobTrace::generate(
      fast_workload(), 1.0, 20000.0, 5);
  auto config = base_config({1.0, 2.0}, 0.5, 20000.0);
  config.trace = &trace;
  auto d1 = make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.5);
  const auto r1 = run_simulation(config, *d1);
  config.seed = 12345;  // seed must not matter for deterministic policies
  auto d2 = make_policy_dispatcher(PolicyKind::kORR, config.speeds, 0.5);
  const auto r2 = run_simulation(config, *d2);
  EXPECT_EQ(r1.completed_jobs, r2.completed_jobs);
  EXPECT_DOUBLE_EQ(r1.mean_response_time, r2.mean_response_time);
}

TEST(ClusterSim, FcfsDisciplineWorsensHeavyTailedRatio) {
  // Under heavy-tailed sizes, FCFS lets large jobs block small ones, so
  // the mean response ratio degrades sharply vs PS.
  hs::workload::WorkloadSpec heavy;
  heavy.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  heavy.size_kind = hs::workload::SizeKind::kBoundedPareto;
  heavy.pareto_alpha = 1.5;
  heavy.pareto_lower = 1.0;
  heavy.pareto_upper = 1000.0;

  SimulationConfig config;
  config.speeds = {1.0, 1.0};
  config.workload = heavy;
  config.rho = 0.6;
  config.sim_time = 100000.0;
  config.seed = 5;

  auto ps_d = make_policy_dispatcher(PolicyKind::kWRR, config.speeds, 0.6);
  config.discipline = ServiceDiscipline::kProcessorSharing;
  const auto ps = run_simulation(config, *ps_d);

  auto fcfs_d = make_policy_dispatcher(PolicyKind::kWRR, config.speeds, 0.6);
  config.discipline = ServiceDiscipline::kFcfs;
  const auto fcfs = run_simulation(config, *fcfs_d);

  EXPECT_GT(fcfs.mean_response_ratio, 2.0 * ps.mean_response_ratio);
}

TEST(ClusterSim, RrQuantumApproximatesPs) {
  auto config = base_config({1.0, 2.0}, 0.6, 50000.0);
  auto d_ps = make_policy_dispatcher(PolicyKind::kWRR, config.speeds, 0.6);
  const auto ps = run_simulation(config, *d_ps);

  config.discipline = ServiceDiscipline::kRoundRobin;
  config.rr_quantum = 0.01;
  auto d_rr = make_policy_dispatcher(PolicyKind::kWRR, config.speeds, 0.6);
  const auto rr = run_simulation(config, *d_rr);
  EXPECT_NEAR(rr.mean_response_time, ps.mean_response_time,
              0.05 * ps.mean_response_time);
}

TEST(ClusterSim, ValidationCatchesBadConfig) {
  // Overloaded rho (>= 1) is legal; only non-positive / non-finite is not.
  auto config = base_config({1.0}, 0.5);
  config.rho = 0.0;
  auto d = make_policy_dispatcher(PolicyKind::kWRR, {1.0}, 0.5);
  EXPECT_THROW(run_simulation(config, *d), hs::util::CheckError);
  config.rho = -0.3;
  EXPECT_THROW(run_simulation(config, *d), hs::util::CheckError);
  config.rho = std::numeric_limits<double>::infinity();
  EXPECT_THROW(run_simulation(config, *d), hs::util::CheckError);

  auto config2 = base_config({1.0, 2.0}, 0.5);
  config2.deviation_expected = {1.0};  // wrong arity
  auto d2 = make_policy_dispatcher(PolicyKind::kWRR, config2.speeds, 0.5);
  EXPECT_THROW(run_simulation(config2, *d2), hs::util::CheckError);
}

TEST(ClusterSim, DispatcherClusterSizeMismatchThrows) {
  auto config = base_config({1.0, 2.0}, 0.5);
  auto d = make_policy_dispatcher(PolicyKind::kWRR, {1.0}, 0.5);
  EXPECT_THROW(run_simulation(config, *d), hs::util::CheckError);
}

TEST(ClusterConfigs, PaperSetupsHaveDocumentedShapes) {
  const auto base = ClusterConfig::paper_base();
  EXPECT_EQ(base.size(), 15u);
  EXPECT_NEAR(base.total_speed(), 44.0, 1e-12);

  const auto table1 = ClusterConfig::paper_table1();
  EXPECT_EQ(table1.size(), 7u);
  EXPECT_NEAR(table1.total_speed(), 31.5, 1e-12);

  const auto skew = ClusterConfig::paper_skewness(20.0);
  EXPECT_EQ(skew.size(), 18u);
  EXPECT_DOUBLE_EQ(skew.max_speed(), 20.0);
  EXPECT_DOUBLE_EQ(skew.skewness(), 20.0);

  const auto sized = ClusterConfig::paper_size(10);
  EXPECT_EQ(sized.size(), 10u);
  EXPECT_NEAR(sized.total_speed(), 55.0, 1e-12);
  EXPECT_THROW(ClusterConfig::paper_size(3), hs::util::CheckError);

  EXPECT_NE(base.describe().find("15 machines"), std::string::npos);
}

}  // namespace
