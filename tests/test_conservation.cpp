// Cross-module conservation properties of the cluster simulation, swept
// over randomized configurations. These invariants hold regardless of
// policy, workload, or cluster shape:
//   * every dispatched job eventually completes (after drain),
//   * total work completed equals the sum of completed job sizes,
//   * machine fractions sum to 1,
//   * Little's law links mean response time, throughput and population,
//   * per-machine utilization matches the allocation-implied load.
#include <gtest/gtest.h>

#include <numeric>

#include "cluster/sim.h"
#include "core/policy.h"
#include "dispatch/fault_aware.h"
#include "dispatch/hedged.h"
#include "overload/circuit_breaker.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::cluster::SimulationConfig;

struct RandomCase {
  SimulationConfig config;
  hs::core::PolicyKind policy = hs::core::PolicyKind::kORR;
};

RandomCase make_case(uint64_t seed) {
  hs::rng::Xoshiro256 gen(seed * 2654435761ull + 17);
  RandomCase c;
  const size_t n = 2 + gen.next_below(8);
  c.config.speeds.resize(n);
  for (double& s : c.config.speeds) {
    s = gen.uniform(0.5, 12.0);
  }
  c.config.rho = gen.uniform(0.2, 0.85);
  c.config.sim_time = 20000.0;
  c.config.warmup_frac = 0.25;
  c.config.seed = seed * 31 + 7;
  c.config.workload.arrival_kind =
      gen.next_double() < 0.5 ? hs::workload::ArrivalKind::kPoisson
                              : hs::workload::ArrivalKind::kHyperExp;
  c.config.workload.size_kind = hs::workload::SizeKind::kExponential;
  c.config.workload.fixed_or_mean_size = 1.0;
  const auto& policies = hs::core::all_policies();
  c.policy = policies[gen.next_below(policies.size())];
  return c;
}

class Conservation : public ::testing::TestWithParam<int> {};

TEST_P(Conservation, InvariantsHold) {
  const RandomCase c = make_case(static_cast<uint64_t>(GetParam()));
  auto dispatcher = hs::core::make_policy_dispatcher(
      c.policy, c.config.speeds, c.config.rho);

  // Count everything through the hooks to avoid relying on the metrics
  // code under test.
  uint64_t completions_seen = 0;
  double work_seen = 0.0;
  double response_sum = 0.0;
  SimulationConfig config = c.config;
  config.completion_hook = [&](const hs::queueing::Completion& completion,
                               bool measured) {
    ++completions_seen;
    work_seen += completion.job.size;
    if (measured) {
      response_sum += completion.response_time();
    }
    HS_CHECK(completion.response_time() >= 0.0, "negative response time");
  };

  const auto result = hs::cluster::run_simulation(config, *dispatcher);

  // (1) Nothing in flight after the drain: measured dispatches equal
  // measured completions.
  EXPECT_EQ(result.dispatched_jobs, result.completed_jobs)
      << hs::core::policy_name(c.policy);

  // (2) Mean response time from the harness equals the hook-side sum.
  if (result.completed_jobs > 0) {
    EXPECT_NEAR(result.mean_response_time,
                response_sum / static_cast<double>(result.completed_jobs),
                1e-9 * result.mean_response_time);
  }

  // (3) Machine fractions are a distribution.
  const double fraction_sum =
      std::accumulate(result.machine_fractions.begin(),
                      result.machine_fractions.end(), 0.0);
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);

  // (4) Utilizations in [0, 1] and, averaged speed-weighted, near ρ.
  double weighted_util = 0.0;
  double total_speed = 0.0;
  for (size_t i = 0; i < config.speeds.size(); ++i) {
    EXPECT_GE(result.machine_utilizations[i], 0.0);
    EXPECT_LE(result.machine_utilizations[i], 1.0 + 1e-9);
    weighted_util += result.machine_utilizations[i] * config.speeds[i];
    total_speed += config.speeds[i];
  }
  // All policies keep every machine unsaturated at these loads, so the
  // aggregate processed work rate must equal the offered load.
  EXPECT_NEAR(weighted_util / total_speed, config.rho, 0.08)
      << hs::core::policy_name(c.policy) << " rho=" << config.rho;
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, Conservation,
                         ::testing::Range(1, 25));

// Whole-run conservation identity with every robustness layer on at
// once: faults (crash/recovery + retry), overload protection (bounded
// queues, admission shedding, retry budget), parameter uncertainty
// (drift, staleness, governed adaptive re-allocation) and the network
// layer (lossy/duplicating links, a partition, heartbeat suspicion,
// hedged dispatch), with the full decorator stack
// CircuitBreaker(Hedged(FaultAware(adaptive))). Every arrival must be
// accounted for exactly once:
// arrivals = completed + shed + dropped + in-flight at the end.
class FullStackConservation : public ::testing::TestWithParam<int> {};

TEST_P(FullStackConservation, ArrivalsAreConserved) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  SimulationConfig config;
  config.speeds = {4.0, 2.0, 1.0};
  config.rho = 0.9;
  config.sim_time = 15000.0;
  config.warmup_frac = 0.25;
  config.seed = seed * 7919 + 13;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;

  // Faults: every machine crashes and recovers a few times per run.
  config.faults.processes.assign(config.speeds.size(), {2000.0, 150.0});
  config.faults.retry.max_attempts = 4;
  config.faults.retry.backoff_initial = 1.0;

  // Overload: bounded queues, probabilistic shedding, a retry budget.
  config.overload.queue_capacity = 64;
  config.overload.admission = hs::overload::AdmissionKind::kQueueBoundShed;
  config.overload.retry_budget.enabled = true;

  // Uncertainty: biased beliefs, drifting true load, stale feedback.
  config.uncertainty.lambda_error.bias = 0.7;
  config.uncertainty.speed_error.noise_cv = 0.1;
  config.uncertainty.drift.kind = hs::uncertainty::DriftKind::kRamp;
  config.uncertainty.drift.ramp_start = 2000.0;
  config.uncertainty.drift.ramp_end = 10000.0;
  config.uncertainty.drift.start_factor = 0.8;
  config.uncertainty.drift.end_factor = 1.2;
  config.uncertainty.staleness.update_interval = 50.0;
  config.uncertainty.staleness.report_delay = 5.0;

  // Network: lossy, slow, duplicating links, one partition window, and a
  // heartbeat detector feeding the fault-aware and breaker decorators.
  config.network.dispatch_link.loss = 0.05;
  config.network.dispatch_link.delay_mean = 0.05;
  config.network.dispatch_link.tail_prob = 0.1;
  config.network.dispatch_link.tail_factor = 10.0;
  config.network.dispatch_link.duplicate = 0.02;
  config.network.report_link.loss = 0.05;
  config.network.report_link.delay_mean = 0.02;
  config.network.report_link.duplicate = 0.02;
  config.network.partitions.push_back({5000.0, 400.0, {1}});
  config.network.heartbeat.interval = 2.0;
  config.network.heartbeat.phi_threshold = 4.0;

  hs::uncertainty::AdaptiveOptions options;
  options.mean_job_size = config.workload.mean_job_size();
  options.time_constant = 1000.0;
  options.reestimate_every = 256;
  auto adaptive = hs::core::make_adaptive_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds,
      config.rho * config.uncertainty.lambda_error.bias, options);
  // Full decorator stack around the adaptive core (all masking natively).
  auto dispatcher = std::make_unique<hs::overload::CircuitBreakerDispatcher>(
      std::make_unique<hs::dispatch::HedgedDispatcher>(
          std::make_unique<hs::dispatch::FaultAwareDispatcher>(
              std::move(adaptive)),
          hs::dispatch::HedgingConfig{/*delay=*/5.0}),
      hs::overload::CircuitBreakerConfig{});

  const auto result = hs::cluster::run_simulation(config, *dispatcher);

  EXPECT_GT(result.total_arrivals, 0u);
  EXPECT_EQ(result.total_arrivals,
            result.total_completed + result.total_shed +
                result.total_dropped + result.in_flight_at_end)
      << "seed=" << seed << " arrivals=" << result.total_arrivals
      << " completed=" << result.total_completed
      << " shed=" << result.total_shed
      << " dropped=" << result.total_dropped
      << " in_flight=" << result.in_flight_at_end;
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, FullStackConservation,
                         ::testing::Range(1, 11));

// The same full-chaos configuration with the O(1) alias sampler routing
// the jobs: CircuitBreaker(Hedged(FaultAware(ORAN + alias))). Crash and
// partition churn drives the survivor-reallocation reweighter (in-place
// alias rebuilds) continuously, so exactly-once accounting here pins
// the alias path end to end across 10 seeds.
class AliasFullStackConservation : public ::testing::TestWithParam<int> {};

TEST_P(AliasFullStackConservation, ArrivalsAreConserved) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  SimulationConfig config;
  config.speeds = {4.0, 2.0, 1.0};
  config.rho = 0.9;
  config.sim_time = 15000.0;
  config.warmup_frac = 0.25;
  config.seed = seed * 104729 + 3;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;

  config.faults.processes.assign(config.speeds.size(), {2000.0, 150.0});
  config.faults.retry.max_attempts = 4;
  config.faults.retry.backoff_initial = 1.0;

  config.overload.queue_capacity = 64;
  config.overload.admission = hs::overload::AdmissionKind::kQueueBoundShed;
  config.overload.retry_budget.enabled = true;

  config.network.dispatch_link.loss = 0.05;
  config.network.dispatch_link.delay_mean = 0.05;
  config.network.dispatch_link.duplicate = 0.02;
  config.network.report_link.loss = 0.05;
  config.network.report_link.delay_mean = 0.02;
  config.network.partitions.push_back({5000.0, 400.0, {1}});
  config.network.heartbeat.interval = 2.0;
  config.network.heartbeat.phi_threshold = 4.0;

  auto fault_aware = hs::core::make_fault_aware_dispatcher(
      hs::core::PolicyKind::kORAN, config.speeds, config.rho,
      /*rho_estimate_factor=*/1.0, hs::dispatch::SamplerKind::kAlias);
  auto dispatcher = std::make_unique<hs::overload::CircuitBreakerDispatcher>(
      std::make_unique<hs::dispatch::HedgedDispatcher>(
          std::move(fault_aware),
          hs::dispatch::HedgingConfig{/*delay=*/5.0}),
      hs::overload::CircuitBreakerConfig{});

  const auto result = hs::cluster::run_simulation(config, *dispatcher);

  EXPECT_GT(result.total_arrivals, 0u);
  EXPECT_EQ(result.total_arrivals,
            result.total_completed + result.total_shed +
                result.total_dropped + result.in_flight_at_end)
      << "seed=" << seed << " arrivals=" << result.total_arrivals
      << " completed=" << result.total_completed
      << " shed=" << result.total_shed
      << " dropped=" << result.total_dropped
      << " in_flight=" << result.in_flight_at_end;
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, AliasFullStackConservation,
                         ::testing::Range(1, 11));

// Little's law: L = λ·W on a single-machine system, measured inside the
// simulation window via area under the queue-length curve.
TEST(Conservation, LittlesLawSingleMachine) {
  SimulationConfig config;
  config.speeds = {1.0};
  config.rho = 0.6;
  config.sim_time = 200000.0;
  config.warmup_frac = 0.0;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.seed = 77;

  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kWRR, config.speeds, config.rho);
  const auto result = hs::cluster::run_simulation(config, *dispatcher);

  // λ·W with λ from completed jobs over the horizon.
  const double lambda =
      static_cast<double>(result.completed_jobs) / config.sim_time;
  const double little_l = lambda * result.mean_response_time;
  // M/M/1 mean number in system at ρ=0.6 is 1.5.
  EXPECT_NEAR(little_l, 1.5, 0.1);
}

}  // namespace
