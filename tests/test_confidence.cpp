// Tests for normal/t quantiles and replication confidence intervals.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.h"
#include "stats/confidence.h"
#include "util/check.h"

namespace {

using namespace hs::stats;

TEST(InverseNormal, KnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.841344746), 1.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959963985, 1e-6);
}

TEST(InverseNormal, ExtremeTails) {
  EXPECT_NEAR(inverse_normal_cdf(1e-6), -4.753424, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(1.0 - 1e-6), 4.753424, 1e-4);
}

TEST(InverseNormal, OutOfRangeThrows) {
  EXPECT_THROW((void)(inverse_normal_cdf(0.0)), hs::util::CheckError);
  EXPECT_THROW((void)(inverse_normal_cdf(1.0)), hs::util::CheckError);
}

TEST(TQuantile, MatchesStandardTables) {
  // Two-sided 95% critical values t_{0.975, df}.
  EXPECT_NEAR(t_quantile(0.975, 1), 12.706, 0.01);
  EXPECT_NEAR(t_quantile(0.975, 2), 4.303, 0.005);
  EXPECT_NEAR(t_quantile(0.975, 4), 2.776, 0.01);
  EXPECT_NEAR(t_quantile(0.975, 9), 2.262, 0.005);   // paper's 10 reps
  EXPECT_NEAR(t_quantile(0.975, 30), 2.042, 0.003);
  EXPECT_NEAR(t_quantile(0.975, 120), 1.980, 0.002);
}

TEST(TQuantile, MatchesTablesAt99) {
  EXPECT_NEAR(t_quantile(0.995, 9), 3.250, 0.01);
  EXPECT_NEAR(t_quantile(0.995, 30), 2.750, 0.005);
}

TEST(TQuantile, MedianIsZero) {
  for (unsigned df : {1u, 2u, 5u, 50u}) {
    EXPECT_DOUBLE_EQ(t_quantile(0.5, df), 0.0);
  }
}

TEST(TQuantile, SymmetricAroundMedian) {
  for (unsigned df : {1u, 3u, 10u}) {
    EXPECT_NEAR(t_quantile(0.9, df), -t_quantile(0.1, df), 1e-6);
  }
}

TEST(TQuantile, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(t_quantile(0.975, 100000), inverse_normal_cdf(0.975), 1e-3);
}

TEST(TQuantile, HeavierTailsThanNormal) {
  for (unsigned df : {1u, 2u, 5u, 20u}) {
    EXPECT_GT(t_quantile(0.975, df), inverse_normal_cdf(0.975));
  }
}

TEST(ConfidenceInterval, SingleSampleZeroWidth) {
  std::vector<double> one = {3.0};
  const auto ci = mean_confidence_interval(one);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_EQ(ci.n, 1u);
}

TEST(ConfidenceInterval, KnownHandComputedCase) {
  // mean 10, sample stddev 1, n=4 => hw = t_{0.975,3} * 1/2 = 1.5912.
  std::vector<double> data = {9.0, 9.66666666667, 10.33333333333, 11.0};
  const auto ci = mean_confidence_interval(data, 0.95);
  EXPECT_NEAR(ci.mean, 10.0, 1e-9);
  const double expected_hw = t_quantile(0.975, 3) * ci.stddev / 2.0;
  EXPECT_NEAR(ci.half_width, expected_hw, 1e-9);
  EXPECT_LT(ci.lower(), 10.0);
  EXPECT_GT(ci.upper(), 10.0);
}

TEST(ConfidenceInterval, HigherConfidenceIsWider) {
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ci95 = mean_confidence_interval(data, 0.95);
  const auto ci99 = mean_confidence_interval(data, 0.99);
  EXPECT_GT(ci99.half_width, ci95.half_width);
}

TEST(ConfidenceInterval, RelativeHalfWidth) {
  std::vector<double> data = {9.0, 11.0};
  const auto ci = mean_confidence_interval(data);
  EXPECT_NEAR(ci.relative_half_width(), ci.half_width / 10.0, 1e-12);
}

TEST(ConfidenceInterval, CoverageIsApproximatelyNominal) {
  // Draw many n=10 batches from a known-mean distribution; the 95% CI
  // must contain the true mean in roughly 95% of batches.
  hs::rng::Xoshiro256 gen(4242);
  const double true_mean = 5.0;
  int covered = 0;
  const int batches = 2000;
  for (int b = 0; b < batches; ++b) {
    std::vector<double> batch;
    for (int i = 0; i < 10; ++i) {
      batch.push_back(true_mean + (gen.next_double() - 0.5) * 4.0);
    }
    const auto ci = mean_confidence_interval(batch, 0.95);
    if (ci.lower() <= true_mean && true_mean <= ci.upper()) {
      ++covered;
    }
  }
  const double coverage = static_cast<double>(covered) / batches;
  EXPECT_NEAR(coverage, 0.95, 0.02);
}

TEST(ConfidenceInterval, EmptyThrows) {
  EXPECT_THROW((void)(mean_confidence_interval(std::vector<double>{})),
               hs::util::CheckError);
}

}  // namespace
