// Tests for the optimized workload allocation (Algorithm 1 and
// Theorems 1–3 of the paper).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "alloc/optimized.h"
#include "alloc/scheme.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::alloc::Allocation;
using hs::alloc::min_objective_value;
using hs::alloc::objective_value;
using hs::alloc::OptimizedAllocation;
using hs::alloc::optimized_cutoff;
using hs::alloc::WeightedAllocation;

// Theorem 1's unclipped closed form (µ = 1), for configurations where no
// machine is excluded.
std::vector<double> theorem1_fractions(const std::vector<double>& speeds,
                                       double rho) {
  const double total = std::accumulate(speeds.begin(), speeds.end(), 0.0);
  const double lambda = rho * total;
  double sum_sqrt = 0.0;
  for (double s : speeds) {
    sum_sqrt += std::sqrt(s);
  }
  std::vector<double> alpha(speeds.size());
  for (size_t i = 0; i < speeds.size(); ++i) {
    alpha[i] =
        (speeds[i] - std::sqrt(speeds[i]) * (total - lambda) / sum_sqrt) /
        lambda;
  }
  return alpha;
}

TEST(Optimized, HomogeneousSystemSplitsEqually) {
  for (double rho : {0.1, 0.5, 0.9}) {
    const std::vector<double> speeds(6, 3.0);
    const Allocation a = OptimizedAllocation().compute(speeds, rho);
    for (size_t i = 0; i < speeds.size(); ++i) {
      EXPECT_NEAR(a[i], 1.0 / 6.0, 1e-12) << "rho=" << rho;
    }
  }
}

TEST(Optimized, MatchesTheorem1WhenAllMachinesActive) {
  const std::vector<double> speeds = {1.0, 2.0, 4.0};
  const double rho = 0.85;  // high enough that nothing is excluded
  const Allocation a = OptimizedAllocation().compute(speeds, rho);
  const auto expected = theorem1_fractions(speeds, rho);
  for (size_t i = 0; i < speeds.size(); ++i) {
    ASSERT_GT(expected[i], 0.0) << "test premise: all active";
    EXPECT_NEAR(a[i], expected[i], 1e-10);
  }
}

TEST(Optimized, SlowMachineExcludedAtLowLoad) {
  // For speeds {1, 10}: machine 0 is excluded iff
  //   √1·(√1+√10) < 11(1−ρ)  ⇔  ρ < 1 − (1+√10)/11 ≈ 0.6216.
  const std::vector<double> speeds = {1.0, 10.0};
  const double threshold = 1.0 - (1.0 + std::sqrt(10.0)) / 11.0;

  const Allocation low = OptimizedAllocation().compute(speeds, 0.5);
  EXPECT_EQ(low[0], 0.0);
  EXPECT_DOUBLE_EQ(low[1], 1.0);

  const Allocation high =
      OptimizedAllocation().compute(speeds, threshold + 0.05);
  EXPECT_GT(high[0], 0.0);

  // Exactly at the cutoff boundary the sorted-prefix count flips.
  std::vector<double> sorted = speeds;
  EXPECT_EQ(optimized_cutoff(sorted, threshold - 1e-6), 1u);
  EXPECT_EQ(optimized_cutoff(sorted, threshold + 1e-6), 0u);
}

TEST(Optimized, ConvergesToWeightedAsRhoApproachesOne) {
  const std::vector<double> speeds = {1.0, 1.5, 2.0, 5.0, 10.0, 12.0};
  const Allocation weighted = WeightedAllocation().compute(speeds, 0.999);
  const Allocation optimized =
      OptimizedAllocation().compute(speeds, 0.9999);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_NEAR(optimized[i], weighted[i], 1e-3);
  }
}

TEST(Optimized, FastMachinesGetDisproportionateShare) {
  const std::vector<double> speeds = {1.0, 2.0, 5.0, 10.0};
  const Allocation a = OptimizedAllocation().compute(speeds, 0.7);
  // Normalized share αᵢ/sᵢ must be non-decreasing in speed.
  for (size_t i = 0; i + 1 < speeds.size(); ++i) {
    EXPECT_LE(a[i] / speeds[i], a[i + 1] / speeds[i + 1] + 1e-12);
  }
  // And strictly more skewed than proportional for the fastest machine.
  const Allocation weighted = WeightedAllocation().compute(speeds, 0.7);
  EXPECT_GT(a[3], weighted[3]);
  EXPECT_LT(a[0], weighted[0]);
}

TEST(Optimized, LowerLoadMeansMoreSkew) {
  const std::vector<double> speeds = {1.0, 10.0};
  const Allocation at30 = OptimizedAllocation().compute(speeds, 0.7);
  const Allocation at90 = OptimizedAllocation().compute(speeds, 0.9);
  EXPECT_GT(at90[0], at30[0]);  // slow machine gains share as load rises
}

TEST(Optimized, NoMachineSaturated) {
  const std::vector<double> speeds = {1.0, 1.0, 1.0, 20.0};
  for (double rho : {0.05, 0.3, 0.7, 0.95, 0.99}) {
    const Allocation a = OptimizedAllocation().compute(speeds, rho);
    EXPECT_LT(a.max_machine_utilization(speeds, rho), 1.0) << "rho=" << rho;
  }
}

TEST(Optimized, PermutationEquivariant) {
  const std::vector<double> speeds = {5.0, 1.0, 12.0, 2.0};
  const std::vector<double> permuted = {12.0, 2.0, 5.0, 1.0};
  const Allocation a = OptimizedAllocation().compute(speeds, 0.6);
  const Allocation b = OptimizedAllocation().compute(permuted, 0.6);
  EXPECT_NEAR(a[0], b[2], 1e-12);  // speed 5
  EXPECT_NEAR(a[1], b[3], 1e-12);  // speed 1
  EXPECT_NEAR(a[2], b[0], 1e-12);  // speed 12
  EXPECT_NEAR(a[3], b[1], 1e-12);  // speed 2
}

TEST(Optimized, EqualSpeedsGetEqualFractions) {
  const std::vector<double> speeds = {1.0, 4.0, 1.0, 4.0, 1.0};
  const Allocation a = OptimizedAllocation().compute(speeds, 0.75);
  EXPECT_NEAR(a[0], a[2], 1e-12);
  EXPECT_NEAR(a[0], a[4], 1e-12);
  EXPECT_NEAR(a[1], a[3], 1e-12);
}

TEST(Optimized, ObjectiveMatchesClosedFormMinimum) {
  const std::vector<double> speeds = {1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0};
  for (double rho : {0.3, 0.5, 0.7, 0.9}) {
    const Allocation a = OptimizedAllocation().compute(speeds, rho);
    EXPECT_NEAR(objective_value(a, speeds, rho),
                min_objective_value(speeds, rho),
                1e-9 * min_objective_value(speeds, rho))
        << "rho=" << rho;
  }
}

TEST(Optimized, BeatsWeightedOnObjective) {
  const std::vector<double> speeds = {1.0, 1.0, 2.0, 8.0};
  for (double rho : {0.3, 0.6, 0.9}) {
    const Allocation opt = OptimizedAllocation().compute(speeds, rho);
    const Allocation weighted = WeightedAllocation().compute(speeds, rho);
    EXPECT_LE(objective_value(opt, speeds, rho),
              objective_value(weighted, speeds, rho) + 1e-12)
        << "rho=" << rho;
  }
}

// Property: no feasible ε-perturbation of the computed optimum improves
// the objective (local optimality under the simplex constraint).
class OptimizedPerturbation : public ::testing::TestWithParam<int> {};

TEST_P(OptimizedPerturbation, NoPerturbationImproves) {
  hs::rng::Xoshiro256 gen(static_cast<uint64_t>(GetParam()) * 7919);
  const size_t n = 2 + gen.next_below(8);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.5, 20.0);
  }
  const double rho = gen.uniform(0.05, 0.95);

  const Allocation opt = OptimizedAllocation().compute(speeds, rho);
  const double best = objective_value(opt, speeds, rho);
  ASSERT_TRUE(std::isfinite(best));

  for (int trial = 0; trial < 200; ++trial) {
    const size_t from = gen.next_below(n);
    const size_t to = gen.next_below(n);
    if (from == to) {
      continue;
    }
    const double eps = gen.uniform(1e-6, 1e-3);
    if (opt[from] < eps) {
      continue;  // infeasible move (would go negative)
    }
    std::vector<double> perturbed = opt.fractions();
    perturbed[from] -= eps;
    perturbed[to] += eps;
    const double value =
        objective_value(Allocation(std::move(perturbed)), speeds, rho);
    EXPECT_GE(value, best - 1e-9) << "moving " << eps << " from machine "
                                  << from << " to " << to << " improved F";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomClusters, OptimizedPerturbation,
                         ::testing::Range(1, 21));

// Property: the binary-search cutoff equals the brute-force maximal
// excluded prefix on random sorted speed vectors.
class CutoffBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(CutoffBruteForce, MatchesLinearScan) {
  hs::rng::Xoshiro256 gen(static_cast<uint64_t>(GetParam()) * 104729);
  const size_t n = 1 + gen.next_below(30);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.1, 50.0);
  }
  std::sort(speeds.begin(), speeds.end());
  const double rho = gen.uniform(0.02, 0.98);

  const double total = std::accumulate(speeds.begin(), speeds.end(), 0.0);
  const double lambda = rho * total;
  size_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    double suffix_speed = 0.0, suffix_sqrt = 0.0;
    for (size_t j = i; j < n; ++j) {
      suffix_speed += speeds[j];
      suffix_sqrt += std::sqrt(speeds[j]);
    }
    if (std::sqrt(speeds[i]) * suffix_sqrt < suffix_speed - lambda) {
      expected = i + 1;  // paper index i is excluded
    }
  }
  EXPECT_EQ(optimized_cutoff(speeds, rho), expected);
}

INSTANTIATE_TEST_SUITE_P(RandomClusters, CutoffBruteForce,
                         ::testing::Range(1, 41));

TEST(Optimized, CutoffRequiresSortedInput) {
  std::vector<double> unsorted = {5.0, 1.0};
  EXPECT_THROW((void)(optimized_cutoff(unsorted, 0.5)), hs::util::CheckError);
}

TEST(Optimized, EstimateFactorOverestimationApproachesWeighted) {
  const std::vector<double> speeds = {1.0, 1.0, 10.0};
  const double rho = 0.7;
  const Allocation exact = OptimizedAllocation(1.0).compute(speeds, rho);
  const Allocation over = OptimizedAllocation(1.10).compute(speeds, rho);
  const Allocation weighted = WeightedAllocation().compute(speeds, rho);
  // Overestimation moves every fraction towards the weighted scheme.
  for (size_t i = 0; i < speeds.size(); ++i) {
    const double d_exact = std::fabs(exact[i] - weighted[i]);
    const double d_over = std::fabs(over[i] - weighted[i]);
    EXPECT_LE(d_over, d_exact + 1e-12);
  }
}

TEST(Optimized, EstimateFactorUnderestimationSkewsMore) {
  const std::vector<double> speeds = {1.0, 1.0, 10.0};
  const double rho = 0.7;
  const Allocation exact = OptimizedAllocation(1.0).compute(speeds, rho);
  const Allocation under = OptimizedAllocation(0.85).compute(speeds, rho);
  EXPECT_GT(under[2], exact[2]);  // fast machine even more loaded
}

TEST(Optimized, HugeOverestimateClampsToWeighted) {
  const std::vector<double> speeds = {1.0, 4.0};
  const Allocation clamped = OptimizedAllocation(50.0).compute(speeds, 0.5);
  const Allocation weighted = WeightedAllocation().compute(speeds, 0.5);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_NEAR(clamped[i], weighted[i], 1e-4);
  }
}

TEST(Optimized, NameEncodesEstimateError) {
  EXPECT_EQ(OptimizedAllocation().name(), "optimized");
  EXPECT_NE(OptimizedAllocation(1.05).name().find("+5"), std::string::npos);
  EXPECT_NE(OptimizedAllocation(0.9).name().find("-10"), std::string::npos);
}

TEST(Optimized, Table1ConfigurationSkew) {
  // The paper's Table 1 speeds at ρ = 0.7: the optimized scheme must give
  // the slowest machine far below its proportional share and the fastest
  // above it — the pattern Dynamic Least-Load exhibits empirically.
  const std::vector<double> speeds = {1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0};
  const Allocation a = OptimizedAllocation().compute(speeds, 0.7);
  const double total = 31.5;
  EXPECT_LT(a[0], 0.5 * speeds[0] / total);  // < half proportional share
  EXPECT_GT(a[6], speeds[6] / total);        // above proportional share
}

TEST(Optimized, MinObjectiveClosedFormWhenAllActive) {
  const std::vector<double> speeds = {1.0, 2.0, 4.0};
  const double rho = 0.85;
  std::vector<double> sorted = speeds;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(optimized_cutoff(sorted, rho), 0u);
  const double total = 7.0;
  const double lambda = rho * total;
  double sum_sqrt = 0.0;
  for (double s : speeds) {
    sum_sqrt += std::sqrt(s);
  }
  const double expected = sum_sqrt * sum_sqrt / (total - lambda);
  EXPECT_NEAR(min_objective_value(speeds, rho), expected, 1e-9 * expected);
}

TEST(Optimized, ObjectiveInfinityForSaturatingAllocation) {
  const std::vector<double> speeds = {1.0, 10.0};
  // All work to the slow machine at ρ=0.5: λ = 5.5 > s₀µ = 1.
  const Allocation bad({1.0, 0.0});
  EXPECT_TRUE(std::isinf(objective_value(bad, speeds, 0.5)));
}

}  // namespace
