// Tests for the P² streaming quantile estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/distributions.h"
#include "stats/percentile.h"
#include "util/check.h"

namespace {

using hs::stats::P2Quantile;

double exact_quantile(std::vector<double> data, double q) {
  std::sort(data.begin(), data.end());
  const double pos = q * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= data.size()) {
    return data.back();
  }
  return data[lo] * (1.0 - frac) + data[lo + 1] * frac;
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile p(0.5);
  EXPECT_EQ(p.value(), 0.0);
  EXPECT_EQ(p.count(), 0u);
}

TEST(P2Quantile, FewSamplesExact) {
  P2Quantile p(0.5);
  p.add(3.0);
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

TEST(P2Quantile, InvalidQuantileThrows) {
  EXPECT_THROW(P2Quantile(0.0), hs::util::CheckError);
  EXPECT_THROW(P2Quantile(1.0), hs::util::CheckError);
}

struct P2Case {
  const char* label;
  double q;
  int distribution;  // 0=uniform, 1=exponential, 2=bounded pareto
  double rel_tol;
};

class P2Accuracy : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2Accuracy, TracksExactQuantile) {
  const P2Case& c = GetParam();
  hs::rng::Xoshiro256 gen(777);
  hs::rng::Exponential exp_dist(0.5);
  hs::rng::BoundedPareto bp(1.0, 1000.0, 1.2);

  P2Quantile p(c.q);
  std::vector<double> data;
  const int n = 200000;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = 0.0;
    switch (c.distribution) {
      case 0:
        x = gen.uniform(0.0, 100.0);
        break;
      case 1:
        x = exp_dist.sample(gen);
        break;
      default:
        x = bp.sample(gen);
        break;
    }
    p.add(x);
    data.push_back(x);
  }
  const double exact = exact_quantile(data, c.q);
  EXPECT_NEAR(p.value(), exact, c.rel_tol * exact) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, P2Accuracy,
    ::testing::Values(P2Case{"uniform_p50", 0.50, 0, 0.02},
                      P2Case{"uniform_p95", 0.95, 0, 0.02},
                      P2Case{"uniform_p99", 0.99, 0, 0.02},
                      P2Case{"exponential_p90", 0.90, 1, 0.05},
                      P2Case{"exponential_p99", 0.99, 1, 0.05},
                      P2Case{"pareto_p95", 0.95, 2, 0.10}),
    [](const auto& info) { return info.param.label; });

TEST(P2Quantile, MonotoneInQ) {
  hs::rng::Xoshiro256 gen(31);
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  for (int i = 0; i < 50000; ++i) {
    const double x = gen.uniform(0.0, 1.0);
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_LT(p50.value(), p90.value());
  EXPECT_LT(p90.value(), p99.value());
}

}  // namespace
