// Tests for the smooth weighted round-robin (nginx-style) comparison
// dispatcher.
#include <gtest/gtest.h>

#include <vector>

#include "dispatch/swrr.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::alloc::Allocation;
using hs::dispatch::SwrrDispatcher;

std::vector<size_t> take(SwrrDispatcher& d, size_t count) {
  hs::rng::Xoshiro256 gen(1);
  std::vector<size_t> sequence;
  for (size_t i = 0; i < count; ++i) {
    sequence.push_back(d.pick(gen));
  }
  return sequence;
}

TEST(Swrr, ClassicNginxExample) {
  // The canonical {5, 1, 1} (normalized) smooth WRR schedule:
  // a a b a c a a — machine 0 never runs twice more than needed in a row
  // beyond its weight's requirement and the others are spread out.
  SwrrDispatcher d{Allocation({5.0 / 7, 1.0 / 7, 1.0 / 7})};
  const auto seq = take(d, 7);
  EXPECT_EQ(seq, (std::vector<size_t>{0, 0, 1, 0, 2, 0, 0}));
}

TEST(Swrr, CountsMatchWeightsPerCycle) {
  SwrrDispatcher d{Allocation({0.5, 0.25, 0.125, 0.125})};
  std::vector<int> counts(4, 0);
  for (size_t machine : take(d, 64)) {
    counts[machine]++;
  }
  EXPECT_EQ(counts[0], 32);
  EXPECT_EQ(counts[1], 16);
  EXPECT_EQ(counts[2], 8);
  EXPECT_EQ(counts[3], 8);
}

TEST(Swrr, ProportionalInAnyPrefix) {
  const std::vector<double> fractions = {0.35, 0.22, 0.15, 0.12,
                                         0.04, 0.04, 0.04, 0.04};
  SwrrDispatcher d{Allocation(fractions)};
  std::vector<uint64_t> counts(fractions.size(), 0);
  hs::rng::Xoshiro256 gen(1);
  for (size_t k = 1; k <= 2000; ++k) {
    counts[d.pick(gen)]++;
    if (k % 400 == 0) {
      for (size_t i = 0; i < fractions.size(); ++i) {
        EXPECT_NEAR(static_cast<double>(counts[i]),
                    fractions[i] * static_cast<double>(k), 2.0)
            << "machine " << i << " after " << k;
      }
    }
  }
}

TEST(Swrr, EqualWeightsRoundRobin) {
  SwrrDispatcher d{Allocation({0.25, 0.25, 0.25, 0.25})};
  const auto seq = take(d, 8);
  // Each cycle of 4 covers all machines.
  for (size_t cycle = 0; cycle < 2; ++cycle) {
    std::vector<bool> seen(4, false);
    for (size_t k = 0; k < 4; ++k) {
      seen[seq[cycle * 4 + k]] = true;
    }
    for (bool s : seen) {
      EXPECT_TRUE(s);
    }
  }
}

TEST(Swrr, ZeroFractionNeverSelected) {
  SwrrDispatcher d{Allocation({0.5, 0.0, 0.5})};
  for (size_t machine : take(d, 100)) {
    EXPECT_NE(machine, 1u);
  }
}

TEST(Swrr, ResetRestoresSequence) {
  SwrrDispatcher d{Allocation({0.6, 0.4})};
  const auto first = take(d, 50);
  d.reset();
  const auto second = take(d, 50);
  EXPECT_EQ(first, second);
}

TEST(Swrr, NameAndInterface) {
  SwrrDispatcher d{Allocation({1.0})};
  EXPECT_EQ(d.name(), "swrr");
  EXPECT_EQ(d.machine_count(), 1u);
  EXPECT_FALSE(d.uses_feedback());
}

}  // namespace
