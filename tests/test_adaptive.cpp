// Tests for online utilization estimation and the adaptive ORR
// dispatcher (extension of §5.4).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/sim.h"
#include "core/adaptive.h"
#include "core/policy.h"
#include "rng/distributions.h"
#include "util/check.h"

namespace {

using hs::core::AdaptiveOrrDispatcher;
using hs::core::AdaptiveOrrOptions;
using hs::core::UtilizationEstimator;

TEST(UtilizationEstimator, FallbackBeforeWarmup) {
  UtilizationEstimator est(1.0, 4.0, 100.0);
  EXPECT_DOUBLE_EQ(est.estimate(0.42), 0.42);
  est.observe_arrival(1.0);
  EXPECT_DOUBLE_EQ(est.estimate(0.42), 0.42);
  EXPECT_EQ(est.arrival_rate(), 0.0);
}

TEST(UtilizationEstimator, ConvergesOnSteadyStream) {
  // mean size 2, total speed 8, arrivals every 0.5 s => λ=2,
  // ρ = 2·2/8 = 0.5.
  UtilizationEstimator est(2.0, 8.0, 50.0);
  for (int i = 0; i < 2000; ++i) {
    est.observe_arrival(0.5 * i);
  }
  EXPECT_NEAR(est.arrival_rate(), 2.0, 0.01);
  EXPECT_NEAR(est.estimate(), 0.5, 0.01);
}

TEST(UtilizationEstimator, ConvergesOnPoissonStream) {
  UtilizationEstimator est(1.0, 10.0, 500.0);
  hs::rng::Xoshiro256 gen(7);
  hs::rng::Exponential gaps(4.0);  // λ = 4 ⇒ ρ = 0.4
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += gaps.sample(gen);
    est.observe_arrival(t);
  }
  EXPECT_NEAR(est.estimate(), 0.4, 0.03);
}

TEST(UtilizationEstimator, TracksLoadDrift) {
  UtilizationEstimator est(1.0, 4.0, 200.0);
  double t = 0.0;
  // Phase 1: λ = 1 (ρ = 0.25).
  for (int i = 0; i < 2000; ++i) {
    t += 1.0;
    est.observe_arrival(t);
  }
  EXPECT_NEAR(est.estimate(), 0.25, 0.02);
  // Phase 2: λ = 3 (ρ = 0.75); after several time constants the
  // estimate must have moved to the new level.
  for (int i = 0; i < 6000; ++i) {
    t += 1.0 / 3.0;
    est.observe_arrival(t);
  }
  EXPECT_NEAR(est.estimate(), 0.75, 0.05);
}

TEST(UtilizationEstimator, ResetForgetsHistory) {
  UtilizationEstimator est(1.0, 1.0, 10.0);
  for (int i = 0; i < 100; ++i) {
    est.observe_arrival(i * 0.1);
  }
  est.reset();
  EXPECT_EQ(est.observed_arrivals(), 0u);
  EXPECT_DOUBLE_EQ(est.estimate(0.3), 0.3);
}

TEST(UtilizationEstimator, RejectsTimeGoingBackwards) {
  UtilizationEstimator est(1.0, 1.0, 10.0);
  est.observe_arrival(5.0);
  EXPECT_THROW((void)(est.observe_arrival(4.0)), hs::util::CheckError);
}

TEST(UtilizationEstimator, InvalidConstructionThrows) {
  EXPECT_THROW((void)(UtilizationEstimator(0.0, 1.0, 1.0)), hs::util::CheckError);
  EXPECT_THROW((void)(UtilizationEstimator(1.0, 0.0, 1.0)), hs::util::CheckError);
  EXPECT_THROW((void)(UtilizationEstimator(1.0, 1.0, 0.0)), hs::util::CheckError);
}

// --------------------------------------------------------- AdaptiveOrr

AdaptiveOrrOptions fast_options() {
  AdaptiveOrrOptions options;
  options.mean_job_size = 1.0;
  options.time_constant = 500.0;
  options.recompute_every = 128;
  options.initial_rho = 0.5;
  return options;
}

TEST(AdaptiveOrr, StartsFromInitialRho) {
  AdaptiveOrrDispatcher d({1.0, 4.0}, fast_options());
  EXPECT_NEAR(d.assumed_rho(), 0.5 * 1.05, 1e-12);
  EXPECT_EQ(d.recomputations(), 0u);
  EXPECT_EQ(d.name(), "adaptive-orr");
  EXPECT_EQ(d.machine_count(), 2u);
}

TEST(AdaptiveOrr, LearnsUtilizationFromArrivals) {
  // Feed a steady λ = 3 stream on Σs = 4 with mean size 1 ⇒ ρ = 0.75.
  AdaptiveOrrDispatcher d({1.0, 3.0}, fast_options());
  hs::rng::Xoshiro256 gen(1);
  for (int i = 0; i < 4000; ++i) {
    d.on_arrival(i / 3.0);
    (void)d.pick(gen);
  }
  EXPECT_GT(d.recomputations(), 0u);
  EXPECT_NEAR(d.assumed_rho(), 0.75 * 1.05, 0.02);
}

TEST(AdaptiveOrr, AllocationFollowsAssumedRho) {
  AdaptiveOrrDispatcher d({1.0, 10.0}, fast_options());
  hs::rng::Xoshiro256 gen(1);
  // Light load: λ = 1.1 on Σs = 11 ⇒ ρ = 0.1 ⇒ slow machine parked.
  for (int i = 0; i < 2000; ++i) {
    d.on_arrival(i / 1.1);
    (void)d.pick(gen);
  }
  EXPECT_LT(d.assumed_rho(), 0.2);
  EXPECT_EQ(d.allocation()[0], 0.0);
}

TEST(AdaptiveOrr, ResetRestoresInitialState) {
  AdaptiveOrrDispatcher d({1.0, 2.0}, fast_options());
  hs::rng::Xoshiro256 gen(1);
  for (int i = 0; i < 1000; ++i) {
    d.on_arrival(i * 0.1);
    (void)d.pick(gen);
  }
  d.reset();
  EXPECT_EQ(d.recomputations(), 0u);
  EXPECT_NEAR(d.assumed_rho(), 0.5 * 1.05, 1e-12);
  EXPECT_EQ(d.estimator().observed_arrivals(), 0u);
}

TEST(AdaptiveOrr, EndToEndMatchesOracleOrr) {
  // Full-simulation check: adaptive ORR with no prior must come close to
  // ORR configured with the true utilization, and clearly beat ORR
  // configured with a badly wrong one.
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 1.0, 1.0, 1.0, 10.0, 10.0};
  config.rho = 0.8;
  config.sim_time = 150000.0;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.seed = 3;

  auto oracle = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  const auto oracle_result = hs::cluster::run_simulation(config, *oracle);

  // Misconfigured: believes the system is nearly idle.
  auto wrong = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho,
      0.3 / config.rho);
  const auto wrong_result = hs::cluster::run_simulation(config, *wrong);

  AdaptiveOrrOptions options;
  options.mean_job_size = 1.0;
  options.time_constant = 2000.0;
  options.recompute_every = 256;
  options.initial_rho = 0.3;  // same bad prior, but it learns
  AdaptiveOrrDispatcher adaptive(config.speeds, options);
  const auto adaptive_result = hs::cluster::run_simulation(config, adaptive);

  EXPECT_GT(wrong_result.mean_response_ratio,
            1.2 * oracle_result.mean_response_ratio);
  EXPECT_LT(adaptive_result.mean_response_ratio,
            1.1 * oracle_result.mean_response_ratio);
}

}  // namespace
