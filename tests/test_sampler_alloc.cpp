// Allocation accounting for the weighted samplers and the in-place
// dispatcher rebuild paths.
//
// The million-machine dispatch work's core promise: once a sampler or
// dispatcher has been built for a cluster size, re-weighting it — the
// survivor re-allocations of the fault/breaker decorators and the
// governed adaptive mask rebuilds — performs ZERO heap allocations.
// These tests pin that with instrumented global operator new/delete,
// mirroring tests/test_event_alloc.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/policy.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "dispatch/swrr.h"
#include "rng/alias_table.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "uncertainty/adaptive.h"

namespace {

std::atomic<uint64_t> g_news{0};

}  // namespace

// Count every allocation in the binary; tests diff the counter around
// the section under scrutiny.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using hs::core::PolicyKind;
using hs::dispatch::RandomDispatcher;
using hs::dispatch::SamplerKind;
using hs::dispatch::SmoothRoundRobinDispatcher;
using hs::dispatch::SwrrDispatcher;
using hs::rng::AliasTable;
using hs::rng::DiscreteChoice;
using hs::rng::Xoshiro256;

class AllocGuard {
 public:
  AllocGuard() : start_(g_news.load(std::memory_order_relaxed)) {}
  [[nodiscard]] uint64_t count() const {
    return g_news.load(std::memory_order_relaxed) - start_;
  }

 private:
  uint64_t start_;
};

constexpr size_t kMachines = 256;

std::vector<double> varied_weights(uint64_t round) {
  std::vector<double> weights(kMachines);
  for (size_t i = 0; i < kMachines; ++i) {
    weights[i] = 1.0 + static_cast<double>((i + round) % 17);
  }
  return weights;
}

// Same values scaled to sum to 1 (what rebuild_fractions requires).
std::vector<double> varied_fractions(uint64_t round) {
  std::vector<double> fractions = varied_weights(round);
  double sum = 0.0;
  for (double f : fractions) {
    sum += f;
  }
  for (double& f : fractions) {
    f /= sum;
  }
  return fractions;
}

TEST(SamplerAllocation, DiscreteChoiceRebuildIsAllocationFree) {
  DiscreteChoice choice(varied_weights(0));
  const std::vector<double> weights_a = varied_weights(1);
  const std::vector<double> weights_b = varied_weights(2);
  Xoshiro256 gen(3);
  AllocGuard guard;
  for (int i = 0; i < 1000; ++i) {
    choice.rebuild(i % 2 == 0 ? weights_a : weights_b);
    (void)choice.sample(gen);
  }
  EXPECT_EQ(guard.count(), 0u);
}

TEST(SamplerAllocation, AliasTableRebuildIsAllocationFree) {
  const std::vector<double> weights_a = varied_weights(1);
  const std::vector<double> weights_b = varied_weights(2);
  AliasTable table{std::span<const double>(weights_a)};
  Xoshiro256 gen(5);
  AllocGuard guard;
  for (int i = 0; i < 1000; ++i) {
    table.rebuild(i % 2 == 0 ? weights_a : weights_b);
    (void)table.sample(gen);
  }
  EXPECT_EQ(guard.count(), 0u);
}

TEST(SamplerAllocation, RandomDispatcherRebuildIsAllocationFree) {
  for (const SamplerKind sampler : {SamplerKind::kCdf, SamplerKind::kAlias}) {
    RandomDispatcher dispatcher(hs::alloc::Allocation(varied_fractions(0)),
                                sampler);
    const std::vector<double> fractions_a = varied_fractions(1);
    const std::vector<double> fractions_b = varied_fractions(2);
    Xoshiro256 gen(7);
    ASSERT_TRUE(dispatcher.rebuild_fractions(fractions_a));  // warm
    AllocGuard guard;
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(
          dispatcher.rebuild_fractions(i % 2 == 0 ? fractions_a
                                                  : fractions_b));
      (void)dispatcher.pick(gen);
    }
    EXPECT_EQ(guard.count(), 0u)
        << "sampler " << (sampler == SamplerKind::kAlias ? "alias" : "cdf");
  }
}

TEST(SamplerAllocation, SmoothRoundRobinRebuildIsAllocationFree) {
  SmoothRoundRobinDispatcher dispatcher(
      hs::alloc::Allocation(varied_fractions(0)));
  const std::vector<double> fractions_a = varied_fractions(1);
  const std::vector<double> fractions_b = varied_fractions(2);
  Xoshiro256 gen(9);
  ASSERT_TRUE(dispatcher.rebuild_fractions(fractions_a));  // warm
  AllocGuard guard;
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(dispatcher.rebuild_fractions(i % 2 == 0 ? fractions_a
                                                        : fractions_b));
    (void)dispatcher.pick(gen);
  }
  EXPECT_EQ(guard.count(), 0u);
}

TEST(SamplerAllocation, SwrrRebuildIsAllocationFree) {
  SwrrDispatcher dispatcher(hs::alloc::Allocation(varied_fractions(0)));
  const std::vector<double> fractions_a = varied_fractions(1);
  const std::vector<double> fractions_b = varied_fractions(2);
  Xoshiro256 gen(11);
  ASSERT_TRUE(dispatcher.rebuild_fractions(fractions_a));  // warm
  AllocGuard guard;
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(dispatcher.rebuild_fractions(i % 2 == 0 ? fractions_a
                                                        : fractions_b));
    (void)dispatcher.pick(gen);
  }
  EXPECT_EQ(guard.count(), 0u);
}

// The tentpole promise end-to-end: fault transitions on a static-policy
// stack (ORAN + alias sampler here) re-weight the live inner dispatcher
// through the policy reweighter — zero allocations per crash/recovery
// once the scratch buffers have seen each survivor-set size.
TEST(SamplerAllocation, FaultAwareSurvivorRebuildIsAllocationFree) {
  const std::vector<double> speeds = {4.0, 4.0, 2.0, 2.0, 1.0, 1.0};
  auto dispatcher = hs::core::make_fault_aware_dispatcher(
      PolicyKind::kORAN, speeds, 0.7, 1.0, SamplerKind::kAlias);
  Xoshiro256 gen(13);
  // Warm-up: visit every survivor-set size the loop below will touch.
  dispatcher->on_machine_state_report(1, false);
  dispatcher->on_machine_state_report(4, false);
  dispatcher->on_machine_state_report(1, true);
  dispatcher->on_machine_state_report(4, true);
  AllocGuard guard;
  for (int i = 0; i < 200; ++i) {
    dispatcher->on_machine_state_report(1, false);
    (void)dispatcher->pick(gen);
    dispatcher->on_machine_state_report(4, false);
    (void)dispatcher->pick(gen);
    dispatcher->on_machine_state_report(1, true);
    dispatcher->on_machine_state_report(4, true);
    (void)dispatcher->pick(gen);
  }
  EXPECT_EQ(guard.count(), 0u);
}

// Same promise for the CDF sampler (the default golden-pinned path).
TEST(SamplerAllocation, FaultAwareSurvivorRebuildCdfIsAllocationFree) {
  const std::vector<double> speeds = {4.0, 4.0, 2.0, 2.0, 1.0, 1.0};
  auto dispatcher = hs::core::make_fault_aware_dispatcher(
      PolicyKind::kORR, speeds, 0.7);
  Xoshiro256 gen(15);
  dispatcher->on_machine_state_report(2, false);
  dispatcher->on_machine_state_report(2, true);
  AllocGuard guard;
  for (int i = 0; i < 200; ++i) {
    dispatcher->on_machine_state_report(2, false);
    (void)dispatcher->pick(gen);
    dispatcher->on_machine_state_report(2, true);
    (void)dispatcher->pick(gen);
  }
  EXPECT_EQ(guard.count(), 0u);
}

// Governed adaptive mask rebuilds: the survivor re-solve (Algorithm 1
// over the estimated speeds), the normalization, the expansion, and the
// in-place install must all run out of retained scratch.
TEST(SamplerAllocation, GovernedAdaptiveMaskFlipIsAllocationFree) {
  const std::vector<double> speeds = {4.0, 2.0, 2.0, 1.0};
  hs::uncertainty::GovernedAdaptiveDispatcher dispatcher(speeds, 0.6);
  Xoshiro256 gen(17);
  std::vector<bool> degraded = {true, false, true, true};
  std::vector<bool> healthy = {true, true, true, true};
  // Warm-up: one full degrade/heal cycle sizes every scratch buffer.
  ASSERT_TRUE(dispatcher.set_available_mask(degraded));
  ASSERT_TRUE(dispatcher.set_available_mask(healthy));
  AllocGuard guard;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(dispatcher.set_available_mask(degraded));
    (void)dispatcher.pick(gen);
    EXPECT_TRUE(dispatcher.set_available_mask(healthy));
    (void)dispatcher.pick(gen);
  }
  EXPECT_EQ(guard.count(), 0u);
}

}  // namespace
