// Parameter-uncertainty subsystem tests: config validation and drift
// math, belief derivation determinism, the streaming estimators, the
// re-allocation governor's state machine, the governed adaptive
// dispatcher (including zero-fraction re-solves and mask rebuilds), and
// end-to-end simulations pinning re-allocation determinism, staleness
// semantics, and zero-overhead-off for the new trace kinds.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "alloc/optimized.h"
#include "cluster/experiment.h"
#include "cluster/sim.h"
#include "core/adaptive.h"
#include "core/policy.h"
#include "dispatch/fault_aware.h"
#include "dispatch/smooth_rr.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "rng/rng.h"
#include "uncertainty/adaptive.h"
#include "uncertainty/config.h"
#include "uncertainty/estimators.h"
#include "uncertainty/governor.h"
#include "util/check.h"

namespace {

using namespace hs::uncertainty;
using hs::util::CheckError;

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  return "";
}

// ---- UncertaintyConfig validation ----

TEST(UncertaintyConfig, DefaultIsDisabledAndValid) {
  UncertaintyConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_NO_THROW(config.validate(1000.0));
}

TEST(UncertaintyConfig, AnyFeatureEnables) {
  UncertaintyConfig config;
  config.lambda_error.bias = 0.7;
  EXPECT_TRUE(config.enabled());
  config = UncertaintyConfig{};
  config.speed_error.noise_cv = 0.1;
  EXPECT_TRUE(config.enabled());
  config = UncertaintyConfig{};
  config.drift.kind = DriftKind::kRamp;
  EXPECT_TRUE(config.enabled());
  config = UncertaintyConfig{};
  config.staleness.update_interval = 10.0;
  EXPECT_TRUE(config.enabled());
}

TEST(UncertaintyConfig, RejectsNonPositiveBias) {
  UncertaintyConfig config;
  config.lambda_error.bias = -0.5;
  const std::string message =
      error_message([&] { config.validate(1000.0); });
  EXPECT_NE(message.find("lambda_error.bias"), std::string::npos) << message;
  EXPECT_NE(message.find("-0.5"), std::string::npos) << message;
  config = UncertaintyConfig{};
  config.speed_error.bias = 0.0;
  EXPECT_THROW(config.validate(1000.0), CheckError);
}

TEST(UncertaintyConfig, RejectsNegativeNoiseCv) {
  UncertaintyConfig config;
  config.speed_error.noise_cv = -0.1;
  const std::string message =
      error_message([&] { config.validate(1000.0); });
  EXPECT_NE(message.find("speed_error.noise_cv"), std::string::npos)
      << message;
}

TEST(DriftTimelineValidation, StepTimesMustStrictlyIncrease) {
  DriftTimeline drift;
  drift.kind = DriftKind::kStep;
  drift.steps = {{100.0, 1.5}, {100.0, 2.0}};
  const std::string message = error_message([&] { drift.validate(1000.0); });
  EXPECT_NE(message.find("strictly increasing"), std::string::npos)
      << message;
  drift.steps = {{100.0, 1.5}, {50.0, 2.0}};
  EXPECT_THROW(drift.validate(1000.0), CheckError);
}

TEST(DriftTimelineValidation, StepRejectsNonPositiveFactorAndLateStart) {
  DriftTimeline drift;
  drift.kind = DriftKind::kStep;
  drift.steps = {{100.0, 0.0}};
  EXPECT_THROW(drift.validate(1000.0), CheckError);
  drift.steps = {{2000.0, 1.5}};
  const std::string message = error_message([&] { drift.validate(1000.0); });
  EXPECT_NE(message.find("not before sim_time"), std::string::npos)
      << message;
  drift.steps.clear();
  EXPECT_THROW(drift.validate(1000.0), CheckError);
}

TEST(DriftTimelineValidation, RampEndpointsMustBeOrdered) {
  DriftTimeline drift;
  drift.kind = DriftKind::kRamp;
  drift.ramp_start = 500.0;
  drift.ramp_end = 500.0;
  const std::string message = error_message([&] { drift.validate(1000.0); });
  EXPECT_NE(message.find("ramp_end"), std::string::npos) << message;
  drift.ramp_end = 800.0;
  drift.end_factor = 0.0;
  EXPECT_THROW(drift.validate(1000.0), CheckError);
}

TEST(DriftTimelineValidation, PeriodicAmplitudeStaysBelowOne) {
  DriftTimeline drift;
  drift.kind = DriftKind::kPeriodic;
  drift.amplitude = 1.0;
  const std::string message = error_message([&] { drift.validate(1000.0); });
  EXPECT_NE(message.find("amplitude"), std::string::npos) << message;
  drift.amplitude = 0.99;
  EXPECT_NO_THROW(drift.validate(1000.0));
  drift.period = 0.0;
  EXPECT_THROW(drift.validate(1000.0), CheckError);
}

TEST(StalenessValidation, IntervalMustFitInsideRun) {
  StalenessConfig staleness;
  EXPECT_NO_THROW(staleness.validate(1000.0));  // off by default
  staleness.update_interval = 1000.0;
  const std::string message =
      error_message([&] { staleness.validate(1000.0); });
  EXPECT_NE(message.find("smaller than sim_time"), std::string::npos)
      << message;
  staleness.update_interval = 10.0;
  staleness.report_delay = -1.0;
  EXPECT_THROW(staleness.validate(1000.0), CheckError);
}

// ---- Drift timeline math ----

TEST(DriftTimeline, StepFactorIsPiecewiseConstant) {
  DriftTimeline drift;
  drift.kind = DriftKind::kStep;
  drift.steps = {{100.0, 1.5}, {200.0, 0.5}};
  EXPECT_DOUBLE_EQ(drift.factor_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(drift.factor_at(99.9), 1.0);
  EXPECT_DOUBLE_EQ(drift.factor_at(100.0), 1.5);
  EXPECT_DOUBLE_EQ(drift.factor_at(199.9), 1.5);
  EXPECT_DOUBLE_EQ(drift.factor_at(500.0), 0.5);
  // Mean over [0, 300]: 100·1 + 100·1.5 + 100·0.5 over 300.
  EXPECT_NEAR(drift.mean_factor(300.0), 1.0, 1e-12);
}

TEST(DriftTimeline, RampInterpolatesLinearly) {
  DriftTimeline drift;
  drift.kind = DriftKind::kRamp;
  drift.ramp_start = 100.0;
  drift.ramp_end = 300.0;
  drift.start_factor = 1.0;
  drift.end_factor = 2.0;
  EXPECT_DOUBLE_EQ(drift.factor_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(drift.factor_at(200.0), 1.5);
  EXPECT_DOUBLE_EQ(drift.factor_at(1000.0), 2.0);
  // Mean over [0, 400]: 100·1 + 200·1.5 + 100·2 over 400.
  EXPECT_NEAR(drift.mean_factor(400.0), 1.5, 1e-12);
}

TEST(DriftTimeline, PeriodicAveragesToOneOverFullPeriods) {
  DriftTimeline drift;
  drift.kind = DriftKind::kPeriodic;
  drift.period = 100.0;
  drift.amplitude = 0.4;
  EXPECT_NEAR(drift.factor_at(25.0), 1.4, 1e-12);  // sin peak
  EXPECT_NEAR(drift.factor_at(75.0), 0.6, 1e-12);  // sin trough
  EXPECT_NEAR(drift.mean_factor(300.0), 1.0, 1e-12);
}

// ---- Belief derivation ----

TEST(Beliefs, PureBiasIsExactAndSeedIndependent) {
  UncertaintyConfig config;
  config.lambda_error.bias = 0.7;
  config.speed_error.bias = 1.2;
  const std::vector<double> speeds = {4.0, 2.0, 1.0};
  const BelievedParams a = derive_beliefs(config, speeds, 0.6, 1);
  const BelievedParams b = derive_beliefs(config, speeds, 0.6, 999);
  EXPECT_DOUBLE_EQ(a.lambda_factor, 0.7);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.speeds[i], speeds[i] * 1.2);
    EXPECT_DOUBLE_EQ(a.speeds[i], b.speeds[i]);  // no noise => no draws
  }
  EXPECT_DOUBLE_EQ(a.rho, b.rho);
  // ρ̂ = ρ·bias_λ·Σs/Σŝ = 0.6·0.7/1.2.
  EXPECT_NEAR(a.rho, 0.6 * 0.7 / 1.2, 1e-12);
}

TEST(Beliefs, NoiseIsDeterministicInTheSeed) {
  UncertaintyConfig config;
  config.lambda_error.noise_cv = 0.3;
  config.speed_error.noise_cv = 0.2;
  const std::vector<double> speeds = {4.0, 2.0, 1.0};
  const BelievedParams a = derive_beliefs(config, speeds, 0.6, 42);
  const BelievedParams b = derive_beliefs(config, speeds, 0.6, 42);
  const BelievedParams c = derive_beliefs(config, speeds, 0.6, 43);
  EXPECT_DOUBLE_EQ(a.lambda_factor, b.lambda_factor);
  EXPECT_EQ(a.speeds, b.speeds);
  EXPECT_NE(a.lambda_factor, c.lambda_factor);
  for (double s : a.speeds) {
    EXPECT_GT(s, 0.0);
  }
}

TEST(Beliefs, NoiseFactorIsMeanOne) {
  // Average the lognormal factor over many seeds: mean must be ~1 so the
  // bias carries all systematic error.
  UncertaintyConfig config;
  config.lambda_error.noise_cv = 0.3;
  double sum = 0.0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    sum += derive_beliefs(config, {1.0}, 0.5,
                          static_cast<uint64_t>(i) * 7919 + 3)
               .lambda_factor;
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.02);
}

// ---- Streaming estimators ----

TEST(RateEstimator, ConvergesToRegularEventRate) {
  RateEstimator estimator(50.0);
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    t += 0.5;  // 2 events per second
    estimator.observe(t);
  }
  EXPECT_TRUE(estimator.warmed_up());
  EXPECT_NEAR(estimator.rate(0.0), 2.0, 0.05);
}

TEST(RateEstimator, TracksRateDrift) {
  RateEstimator estimator(20.0);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 1.0;
    estimator.observe(t);
  }
  EXPECT_NEAR(estimator.rate(0.0), 1.0, 0.05);
  for (int i = 0; i < 500; ++i) {
    t += 0.25;  // rate quadruples
    estimator.observe(t);
  }
  EXPECT_NEAR(estimator.rate(0.0), 4.0, 0.3);
}

TEST(RateEstimator, UsesFallbackUntilWarm) {
  RateEstimator estimator(50.0, 16);
  EXPECT_DOUBLE_EQ(estimator.rate(7.0), 7.0);
  estimator.observe(1.0);
  EXPECT_FALSE(estimator.warmed_up());
  EXPECT_DOUBLE_EQ(estimator.rate(7.0), 7.0);
}

TEST(ServiceRateEstimator, RecoversSpeedFromCompletedWork) {
  // Machine of speed 4: a job of 2 base-speed seconds departs after
  // 0.5 s of busy time.
  ServiceRateEstimator estimator;
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    estimator.observe_dispatch(t);
    t += 0.5;
    estimator.observe_departure(t, 2.0);
    t += 3.0;  // idle gap: must not count as busy time
  }
  EXPECT_TRUE(estimator.warmed_up());
  EXPECT_NEAR(estimator.speed(0.0), 4.0, 0.2);
}

TEST(ServiceRateEstimator, HeavyTailedSizesDoNotBiasTheEstimate) {
  // Speed 4, but sizes alternate tiny and huge (mean 51). A job-count
  // throughput scaled by the mean would overestimate the speed between
  // big-job completions, and a decayed window would credit a big job's
  // work after its busy time had already decayed; the cumulative
  // work-over-busy ratio is exact.
  ServiceRateEstimator estimator;
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double work = i % 10 == 9 ? 500.0 : 1.0;
    estimator.observe_dispatch(t);
    t += work / 4.0;
    estimator.observe_departure(t, work);
  }
  EXPECT_NEAR(estimator.speed(0.0), 4.0, 1e-9);
}

TEST(ServiceRateEstimator, ForgetOutstandingStopsPhantomBusyTime) {
  ServiceRateEstimator estimator;
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    estimator.observe_dispatch(t);
    t += 0.5;
    estimator.observe_departure(t, 2.0);
  }
  const double before = estimator.speed(0.0);
  // Ten dispatches that will never depart (lost to a crash)...
  for (int i = 0; i < 10; ++i) {
    estimator.observe_dispatch(t);
  }
  estimator.forget_outstanding(10);
  EXPECT_EQ(estimator.outstanding(), 0u);
  // ...so a long quiet period must not depress the estimate.
  for (int i = 0; i < 100; ++i) {
    estimator.observe_dispatch(t);
    t += 0.5;
    estimator.observe_departure(t, 2.0);
  }
  EXPECT_NEAR(estimator.speed(0.0), before, 0.3);
}

TEST(EstimatorBank, RhoHatCombinesArrivalAndServiceEstimates) {
  // Two machines of true speed 2 and 1, mean size 1, arrivals at rate
  // 1.5 => true rho = 0.5.
  EstimatorBank bank(2, 1.0, 200.0);
  double t = 0.0;
  int turn = 0;
  for (int i = 0; i < 3000; ++i) {
    t += 1.0 / 1.5;
    bank.observe_arrival(t);
    const size_t machine = turn++ % 3 == 2 ? 1 : 0;  // 2:1 split
    bank.observe_dispatch(machine, t);
    bank.observe_departure(machine, t + (machine == 0 ? 0.5 : 1.0), 1.0);
  }
  EXPECT_NEAR(bank.lambda_hat(0.0), 1.5, 0.1);
  const double rho =
      bank.rho_hat({2.0, 1.0}, 0.0);
  EXPECT_GT(rho, 0.3);
  EXPECT_LT(rho, 0.7);
}

// ---- Re-allocation governor ----

TEST(Governor, ValidationRejectsBadConfig) {
  GovernorConfig config;
  config.min_improvement = -0.1;
  EXPECT_THROW(config.validate(), CheckError);
  config = GovernorConfig{};
  config.flap_threshold = 0;
  EXPECT_THROW(config.validate(), CheckError);
  config = GovernorConfig{};
  config.budget_window = -1.0;
  EXPECT_THROW(config.validate(), CheckError);
}

TEST(Governor, CommitsOnlyAboveImprovementThreshold) {
  GovernorConfig config;
  config.min_improvement = 0.10;
  config.min_dwell = 0.0;
  ReallocationGovernor governor(config);
  EXPECT_EQ(governor.consider(10.0, 100.0, 95.0),
            GovernorVerdict::kNoImprovement);
  EXPECT_EQ(governor.consider(20.0, 100.0, 85.0), GovernorVerdict::kCommit);
  EXPECT_EQ(governor.proposals(), 2u);
  EXPECT_EQ(governor.commits(), 1u);
  EXPECT_EQ(governor.rejections(), 1u);
}

TEST(Governor, InfiniteCurrentObjectiveAlwaysImproves) {
  GovernorConfig config;
  config.min_dwell = 0.0;
  ReallocationGovernor governor(config);
  EXPECT_EQ(governor.consider(
                1.0, std::numeric_limits<double>::infinity(), 500.0),
            GovernorVerdict::kCommit);
}

TEST(Governor, DwellSeparatesCommits) {
  GovernorConfig config;
  config.min_improvement = 0.05;
  config.min_dwell = 100.0;
  ReallocationGovernor governor(config);
  EXPECT_EQ(governor.consider(10.0, 100.0, 50.0), GovernorVerdict::kCommit);
  EXPECT_EQ(governor.consider(50.0, 100.0, 50.0), GovernorVerdict::kDwell);
  EXPECT_EQ(governor.consider(111.0, 100.0, 50.0), GovernorVerdict::kCommit);
  EXPECT_EQ(governor.last_commit_time(), 111.0);
}

TEST(Governor, WindowBudgetExhausts) {
  GovernorConfig config;
  config.min_dwell = 0.0;
  config.window_budget = 2;
  config.budget_window = 1000.0;
  // Keep the flap guard out of the way.
  config.flap_threshold = 100;
  ReallocationGovernor governor(config);
  EXPECT_EQ(governor.consider(10.0, 100.0, 50.0), GovernorVerdict::kCommit);
  EXPECT_EQ(governor.consider(20.0, 100.0, 50.0), GovernorVerdict::kCommit);
  EXPECT_EQ(governor.consider(30.0, 100.0, 50.0),
            GovernorVerdict::kBudgetExhausted);
  // The window slides: after it passes, commits resume.
  EXPECT_EQ(governor.consider(1100.0, 100.0, 50.0),
            GovernorVerdict::kCommit);
}

TEST(Governor, FlapGuardFreezesAndOptionallyThaws) {
  GovernorConfig config;
  config.min_dwell = 0.0;
  config.window_budget = 100;
  config.budget_window = 1000.0;
  config.flap_threshold = 3;
  config.flap_window = 1000.0;
  config.freeze_duration = 500.0;
  ReallocationGovernor governor(config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(governor.consider(10.0 * (i + 1), 100.0, 50.0),
              GovernorVerdict::kCommit);
  }
  // The fourth rapid commit would exceed flap_threshold: freeze instead.
  EXPECT_EQ(governor.consider(40.0, 100.0, 50.0), GovernorVerdict::kFrozen);
  EXPECT_TRUE(governor.frozen());
  EXPECT_EQ(governor.freezes(), 1u);
  EXPECT_EQ(governor.consider(100.0, 100.0, 50.0),
            GovernorVerdict::kFrozen);
  // After freeze_duration the guard thaws (the flap window has slid).
  EXPECT_EQ(governor.consider(1600.0, 100.0, 50.0),
            GovernorVerdict::kCommit);
  EXPECT_FALSE(governor.frozen());
}

TEST(Governor, DefaultConfigCannotSelfTrip) {
  // min_dwell · flap_threshold > flap_window: respecting the dwell time
  // makes the flap guard unreachable with defaults.
  const GovernorConfig config;
  EXPECT_GT(config.min_dwell * config.flap_threshold, config.flap_window);
}

TEST(Governor, VerdictNamesAreStable) {
  EXPECT_STREQ(governor_verdict_name(GovernorVerdict::kCommit), "commit");
  EXPECT_STREQ(governor_verdict_name(GovernorVerdict::kFrozen), "frozen");
}

// ---- Governed adaptive dispatcher ----

TEST(GovernedAdaptive, InitialAllocationMatchesBeliefs) {
  const std::vector<double> believed = {4.0, 2.0, 1.0};
  hs::uncertainty::GovernedAdaptiveDispatcher dispatcher(believed, 0.6);
  const auto expected =
      hs::alloc::OptimizedAllocation().compute(believed, 0.6);
  for (size_t i = 0; i < believed.size(); ++i) {
    EXPECT_NEAR(dispatcher.allocation()[i], expected[i], 1e-12);
  }
  EXPECT_DOUBLE_EQ(dispatcher.assumed_rho(), 0.6);
  EXPECT_EQ(dispatcher.name(), "governed-orr");
}

TEST(GovernedAdaptive, FactoryPicksSchemeFromPolicy) {
  const std::vector<double> speeds = {4.0, 1.0};
  auto orr = hs::core::make_adaptive_dispatcher(hs::core::PolicyKind::kORR,
                                                speeds, 0.5);
  auto wrr = hs::core::make_adaptive_dispatcher(hs::core::PolicyKind::kWRR,
                                                speeds, 0.5);
  EXPECT_EQ(orr->name(), "governed-orr");
  EXPECT_EQ(wrr->name(), "governed-wrr");
  EXPECT_THROW(
      (void)hs::core::make_adaptive_dispatcher(
          hs::core::PolicyKind::kLeastLoad, speeds, 0.5),
      CheckError);
}

// The optimized allocation zeroes out slow machines at low utilization.
// A re-solve that lands such an allocation mid-run must keep dispatching
// (SmoothRoundRobin skips zero-fraction machines) — no division by zero,
// no stall. Regression tests for the zero-allocation audit.
TEST(GovernedAdaptive, ZeroFractionReSolveKeepsDispatching) {
  const std::vector<double> speeds = {50.0, 1.0};
  hs::uncertainty::AdaptiveOptions options;
  options.mean_job_size = 1.0;
  options.reestimate_every = 64;
  options.governor.min_dwell = 0.0;
  options.governor.min_improvement = 0.0;
  hs::uncertainty::GovernedAdaptiveDispatcher dispatcher(speeds, 0.5,
                                                         options);
  // Drive arrivals slow enough that rho_hat clamps to min_rho: the
  // optimized re-solve then concentrates everything on the fast machine.
  hs::rng::Xoshiro256 gen(7);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += 1.0;  // λ̂ ≈ 1 against Σŝ = 51 => ρ̂ ≈ 0.02
    dispatcher.on_arrival(t);
    const size_t machine = dispatcher.pick(gen);
    ASSERT_LT(machine, speeds.size());
    dispatcher.on_departure_report(machine, t + 0.02);
  }
  ASSERT_GE(dispatcher.governor().commits(), 1u);
  EXPECT_EQ(dispatcher.allocation()[1], 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    sum += dispatcher.allocation()[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Still dispatching, and only to the machine with positive fraction.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dispatcher.pick(gen), 0u);
  }
}

TEST(AdaptiveOrr, ZeroFractionReSolveKeepsDispatching) {
  const std::vector<double> speeds = {50.0, 1.0};
  hs::core::AdaptiveOrrOptions options;
  options.mean_job_size = 1.0;
  options.recompute_every = 64;
  hs::core::AdaptiveOrrDispatcher dispatcher(speeds, options);
  hs::rng::Xoshiro256 gen(7);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += 1.0;
    dispatcher.on_arrival(t);
    const size_t machine = dispatcher.pick(gen);
    ASSERT_LT(machine, speeds.size());
  }
  ASSERT_GE(dispatcher.recomputations(), 1u);
  EXPECT_EQ(dispatcher.allocation()[1], 0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dispatcher.pick(gen), 0u);
  }
}

TEST(SmoothRoundRobin, AcceptsZeroFractionAllocation) {
  hs::alloc::Allocation allocation({0.75, 0.0, 0.25});
  hs::dispatch::SmoothRoundRobinDispatcher dispatcher(std::move(allocation));
  hs::rng::Xoshiro256 gen(1);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 400; ++i) {
    counts[dispatcher.pick(gen)]++;
  }
  EXPECT_EQ(counts[0], 300);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 100);
}

TEST(GovernedAdaptive, MaskRebuildBypassesGovernor) {
  const std::vector<double> speeds = {4.0, 2.0, 1.0};
  hs::uncertainty::GovernedAdaptiveDispatcher dispatcher(speeds, 0.6);
  const uint64_t commits_before = dispatcher.governor().commits();
  EXPECT_TRUE(dispatcher.set_available_mask({true, false, true}));
  EXPECT_EQ(dispatcher.mask_rebuilds(), 1u);
  EXPECT_EQ(dispatcher.governor().commits(), commits_before);
  EXPECT_DOUBLE_EQ(dispatcher.allocation()[1], 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    sum += dispatcher.allocation()[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Recovery rebuilds again over the full set.
  EXPECT_TRUE(dispatcher.set_available_mask({true, true, true}));
  EXPECT_EQ(dispatcher.mask_rebuilds(), 2u);
  EXPECT_GT(dispatcher.allocation()[1], 0.0);
}

TEST(GovernedAdaptive, ResetRestoresInitialState) {
  const std::vector<double> speeds = {4.0, 1.0};
  hs::uncertainty::AdaptiveOptions options;
  options.mean_job_size = 1.0;
  options.reestimate_every = 32;
  options.governor.min_dwell = 0.0;
  options.governor.min_improvement = 0.0;
  hs::uncertainty::GovernedAdaptiveDispatcher dispatcher(speeds, 0.5,
                                                         options);
  hs::rng::Xoshiro256 gen(3);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 0.3;
    dispatcher.on_arrival(t);
    (void)dispatcher.pick(gen);
  }
  dispatcher.reset();
  EXPECT_EQ(dispatcher.governor().commits(), 0u);
  EXPECT_TRUE(dispatcher.timeline().empty());
  EXPECT_EQ(dispatcher.mask_rebuilds(), 0u);
  const auto expected =
      hs::alloc::OptimizedAllocation().compute(speeds, 0.5);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_NEAR(dispatcher.allocation()[i], expected[i], 1e-12);
  }
}

// ---- End-to-end simulation behavior ----

hs::cluster::SimulationConfig base_config() {
  hs::cluster::SimulationConfig config;
  config.speeds = {4.0, 2.0, 1.0};
  config.rho = 0.7;
  config.sim_time = 20000.0;
  config.warmup_frac = 0.25;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.seed = 4242;
  return config;
}

hs::uncertainty::AdaptiveOptions fast_adaptive_options() {
  hs::uncertainty::AdaptiveOptions options;
  options.mean_job_size = 1.0;
  options.time_constant = 1000.0;
  options.reestimate_every = 128;
  options.governor.min_dwell = 500.0;
  options.governor.budget_window = 5000.0;
  options.governor.flap_window = 2500.0;
  return options;
}

TEST(UncertainSimulation, AllOnesStepDriftIsBitIdenticalToNoDrift) {
  hs::cluster::SimulationConfig config = base_config();
  auto plain = hs::core::make_policy_dispatcher(hs::core::PolicyKind::kORR,
                                                config.speeds, config.rho);
  const auto baseline = hs::cluster::run_simulation(config, *plain);

  config.uncertainty.drift.kind = DriftKind::kStep;
  config.uncertainty.drift.steps = {{1000.0, 1.0}};  // factor stays 1
  const auto drifted = hs::cluster::run_simulation(config, *plain);

  EXPECT_EQ(baseline.mean_response_time, drifted.mean_response_time);
  EXPECT_EQ(baseline.completed_jobs, drifted.completed_jobs);
  EXPECT_EQ(baseline.events_fired, drifted.events_fired);
}

TEST(UncertainSimulation, StepDriftScalesThroughput) {
  hs::cluster::SimulationConfig config = base_config();
  config.rho = 0.4;
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  const auto baseline = hs::cluster::run_simulation(config, *dispatcher);

  config.uncertainty.drift.kind = DriftKind::kStep;
  config.uncertainty.drift.steps = {{0.0, 1.5}};  // rate up 50 % from t=0
  const auto drifted = hs::cluster::run_simulation(config, *dispatcher);

  const double ratio = static_cast<double>(drifted.total_arrivals) /
                       static_cast<double>(baseline.total_arrivals);
  EXPECT_NEAR(ratio, 1.5, 0.05);
}

TEST(UncertainSimulation, ReallocTimelineIsSeedDeterministic) {
  hs::cluster::SimulationConfig config = base_config();
  config.uncertainty.lambda_error.bias = 0.6;  // force a wrong start

  const auto run_once = [&] {
    auto dispatcher = hs::core::make_adaptive_dispatcher(
        hs::core::PolicyKind::kORR, config.speeds,
        config.rho * config.uncertainty.lambda_error.bias,
        fast_adaptive_options());
    auto* adaptive =
        dynamic_cast<hs::uncertainty::GovernedAdaptiveDispatcher*>(
            dispatcher.get());
    const auto result = hs::cluster::run_simulation(config, *dispatcher);
    return std::make_pair(result, adaptive->timeline());
  };

  const auto [result_a, timeline_a] = run_once();
  const auto [result_b, timeline_b] = run_once();
  EXPECT_EQ(result_a.mean_response_time, result_b.mean_response_time);
  EXPECT_EQ(result_a.realloc_commits, result_b.realloc_commits);
  ASSERT_GE(timeline_a.size(), 1u);
  ASSERT_EQ(timeline_a.size(), timeline_b.size());
  for (size_t i = 0; i < timeline_a.size(); ++i) {
    EXPECT_EQ(timeline_a[i].time, timeline_b[i].time) << i;
    EXPECT_EQ(timeline_a[i].assumed_rho, timeline_b[i].assumed_rho) << i;
    EXPECT_EQ(timeline_a[i].fractions, timeline_b[i].fractions) << i;
  }
}

TEST(UncertainSimulation, ResultCountsAdaptationThroughDecorators) {
  hs::cluster::SimulationConfig config = base_config();
  config.uncertainty.lambda_error.bias = 0.6;
  auto factory = hs::core::adaptive_dispatcher_factory(
      hs::core::PolicyKind::kORR, config.speeds,
      config.rho * config.uncertainty.lambda_error.bias,
      fast_adaptive_options(), /*fault_aware=*/true);
  auto dispatcher = factory();
  ASSERT_NE(
      dynamic_cast<hs::dispatch::FaultAwareDispatcher*>(dispatcher.get()),
      nullptr);
  const auto result = hs::cluster::run_simulation(config, *dispatcher);
  // The run context unwraps the decorator to find the adaptive core.
  EXPECT_GE(result.realloc_commits, 1u);
  EXPECT_EQ(result.governor_freezes, 0u);
}

TEST(UncertainSimulation, AdaptiveRecoversFromMisparameterization) {
  hs::cluster::SimulationConfig config = base_config();
  config.rho = 0.85;
  config.sim_time = 40000.0;
  config.uncertainty.lambda_error.bias = 0.55;
  const double believed_rho =
      config.rho * config.uncertainty.lambda_error.bias;

  // Static ORR planned for the wrong (under-estimated) load.
  auto wrong = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, believed_rho);
  const auto static_wrong = hs::cluster::run_simulation(config, *wrong);

  // Oracle static ORR planned for the true load.
  auto oracle = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  const auto static_oracle = hs::cluster::run_simulation(config, *oracle);

  // Adaptive, seeded with the same wrong belief.
  auto adaptive = hs::core::make_adaptive_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, believed_rho,
      fast_adaptive_options());
  const auto adapted = hs::cluster::run_simulation(config, *adaptive);

  ASSERT_GT(static_wrong.mean_response_time,
            static_oracle.mean_response_time);
  // The adaptive run must recover at least half of the gap.
  const double gap = static_wrong.mean_response_time -
                     static_oracle.mean_response_time;
  EXPECT_LT(adapted.mean_response_time,
            static_wrong.mean_response_time - 0.5 * gap)
      << "wrong=" << static_wrong.mean_response_time
      << " oracle=" << static_oracle.mean_response_time
      << " adaptive=" << adapted.mean_response_time;
  EXPECT_GE(adapted.realloc_commits, 1u);
  EXPECT_EQ(adapted.governor_freezes, 0u);
}

TEST(UncertainSimulation, StalenessIsDeterministicAndDegradesLeastLoad) {
  hs::cluster::SimulationConfig config = base_config();
  config.rho = 0.85;
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kLeastLoad, config.speeds, config.rho);
  const auto fresh = hs::cluster::run_simulation(config, *dispatcher);

  config.uncertainty.staleness.update_interval = 100.0;
  config.uncertainty.staleness.report_delay = 10.0;
  const auto stale_a = hs::cluster::run_simulation(config, *dispatcher);
  const auto stale_b = hs::cluster::run_simulation(config, *dispatcher);

  // Deterministic in the seed.
  EXPECT_EQ(stale_a.mean_response_time, stale_b.mean_response_time);
  EXPECT_EQ(stale_a.events_fired, stale_b.events_fired);
  // The event pattern genuinely changed (snapshots replace reports)...
  EXPECT_NE(stale_a.events_fired, fresh.events_fired);
  // ...and routing on a view up to 110 s old is clearly worse at this
  // load than §4.2's sub-second feedback.
  EXPECT_GT(stale_a.mean_response_time, fresh.mean_response_time);
}

TEST(UncertainSimulation, ExperimentAggregatesAdaptationTotals) {
  hs::cluster::ExperimentConfig experiment;
  experiment.simulation = base_config();
  experiment.simulation.uncertainty.lambda_error.bias = 0.6;
  experiment.replications = 3;
  experiment.base_seed = 99;
  const auto beliefs = experiment.believed_params();
  EXPECT_NEAR(beliefs.rho, experiment.simulation.rho * 0.6, 1e-12);
  auto factory = hs::core::adaptive_dispatcher_factory(
      hs::core::PolicyKind::kORR, beliefs.speeds, beliefs.rho,
      fast_adaptive_options());
  const auto result = hs::cluster::run_experiment(experiment, factory);
  uint64_t commits = 0;
  for (const auto& replication : result.replications) {
    commits += replication.realloc_commits;
  }
  EXPECT_EQ(result.total_realloc_commits, commits);
  EXPECT_GE(result.total_realloc_commits, 1u);
  EXPECT_EQ(result.total_governor_freezes, 0u);
}

// ---- Observability of the adaptive loop ----

TEST(UncertainSimulation, TraceKindNamesAreStable) {
  using hs::obs::TraceEventKind;
  EXPECT_STREQ(
      hs::obs::trace_event_kind_name(TraceEventKind::kEstimateUpdate),
      "estimate_update");
  EXPECT_STREQ(
      hs::obs::trace_event_kind_name(TraceEventKind::kReallocCommit),
      "realloc_commit");
  EXPECT_STREQ(
      hs::obs::trace_event_kind_name(TraceEventKind::kReallocReject),
      "realloc_reject");
  EXPECT_STREQ(
      hs::obs::trace_event_kind_name(TraceEventKind::kGovernorFreeze),
      "governor_freeze");
}

TEST(UncertainSimulation, ObservationIsZeroOverheadForAdaptiveRuns) {
  hs::cluster::SimulationConfig config = base_config();
  config.uncertainty.lambda_error.bias = 0.6;
  auto factory = [&] {
    return hs::core::make_adaptive_dispatcher(
        hs::core::PolicyKind::kORR, config.speeds,
        config.rho * config.uncertainty.lambda_error.bias,
        fast_adaptive_options());
  };

  auto plain_dispatcher = factory();
  const auto plain = hs::cluster::run_simulation(config, *plain_dispatcher);

  hs::obs::TraceSink sink;
  hs::obs::MetricsRegistry registry;
  hs::obs::Observer observer;
  observer.trace = &sink;
  observer.metrics = &registry;
  observer.sample_interval = 500.0;
  config.observer = &observer;
  auto observed_dispatcher = factory();
  const auto observed =
      hs::cluster::run_simulation(config, *observed_dispatcher);

  // Observation must not move a single event or change a result bit
  // (sampling adds exactly its own tick events).
  EXPECT_EQ(plain.mean_response_time, observed.mean_response_time);
  EXPECT_EQ(plain.completed_jobs, observed.completed_jobs);
  EXPECT_EQ(plain.realloc_commits, observed.realloc_commits);
  EXPECT_EQ(observed.events_fired, plain.events_fired + 40);

  // The adaptive loop shows up in the trace...
  size_t estimate_updates = 0;
  size_t commits = 0;
  for (size_t i = 0; i < sink.size(); ++i) {
    const auto& record = sink.at(i);
    if (record.kind == hs::obs::TraceEventKind::kEstimateUpdate) {
      ++estimate_updates;
    }
    if (record.kind == hs::obs::TraceEventKind::kReallocCommit) {
      ++commits;
    }
  }
  EXPECT_GE(estimate_updates, 1u);
  // The ring overwrites its oldest records on a long run, so the trace
  // holds a suffix of the commits, never more than the governor counted.
  EXPECT_GE(commits, 1u);
  EXPECT_LE(commits, observed.realloc_commits);
  // ...and in the always-present gauges.
  const size_t last = registry.sample_count() - 1;
  EXPECT_GT(registry.value(last, registry.column("cluster.lambda_hat")),
            0.0);
  EXPECT_EQ(
      registry.value(last, registry.column("cluster.realloc_commits")),
      static_cast<double>(observed.realloc_commits));
}

}  // namespace
