// Tests for the §2.3 analytic performance model (Eq. 3 and friends).
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/analytic_model.h"
#include "alloc/optimized.h"
#include "alloc/scheme.h"
#include "util/check.h"

namespace {

using namespace hs::alloc;

SystemParameters make_params(std::vector<double> speeds, double rho,
                             double mean_size = 1.0) {
  SystemParameters p;
  p.speeds = std::move(speeds);
  p.rho = rho;
  p.mean_job_size = mean_size;
  return p;
}

TEST(SystemParameters, DerivedQuantities) {
  const auto p = make_params({1.0, 3.0}, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(p.mu(), 0.5);
  EXPECT_DOUBLE_EQ(p.total_speed(), 4.0);
  // λ = ρ·μ·Σs = 0.5·0.5·4 = 1.
  EXPECT_DOUBLE_EQ(p.lambda(), 1.0);
}

TEST(SystemParameters, ValidationRejectsBadInputs) {
  EXPECT_THROW((void)(make_params({}, 0.5).validate()), hs::util::CheckError);
  EXPECT_THROW((void)(make_params({1.0}, 0.0).validate()), hs::util::CheckError);
  EXPECT_THROW((void)(make_params({1.0}, 1.0).validate()), hs::util::CheckError);
  EXPECT_THROW((void)(make_params({-1.0}, 0.5).validate()), hs::util::CheckError);
  auto p = make_params({1.0}, 0.5);
  p.mean_job_size = 0.0;
  EXPECT_THROW((void)(p.validate()), hs::util::CheckError);
}

TEST(AnalyticModel, SingleMachineReducesToMm1) {
  // One machine speed 1: T = 1/(μ−λ) = (1/μ)/(1−ρ).
  const auto p = make_params({1.0}, 0.7, 1.0);
  const Allocation all({1.0});
  EXPECT_NEAR(predicted_mean_response_time(p, all), 1.0 / 0.3, 1e-12);
  EXPECT_NEAR(predicted_mean_response_ratio(p, all), 1.0 / 0.3, 1e-12);
}

TEST(AnalyticModel, ResponseRatioIsMuTimesResponseTime) {
  // R̄ = μT̄ (§2.3) for any allocation and mean size.
  const auto p = make_params({1.0, 2.0, 5.0}, 0.6, 76.8);
  const Allocation a = WeightedAllocation().compute(p.speeds, p.rho);
  EXPECT_NEAR(predicted_mean_response_ratio(p, a),
              p.mu() * predicted_mean_response_time(p, a), 1e-12);
}

TEST(AnalyticModel, WeightedAllocationHandComputed) {
  // Two machines {1, 3}, ρ=0.5, μ=1 (mean size 1): λ = 2.
  // Weighted: α = {0.25, 0.75}; T̄ = 0.25/(1−0.5) + 0.75/(3−1.5)
  //         = 0.5 + 0.5 = 1.0.
  const auto p = make_params({1.0, 3.0}, 0.5, 1.0);
  const Allocation a({0.25, 0.75});
  EXPECT_NEAR(predicted_mean_response_time(p, a), 1.0, 1e-12);
}

TEST(AnalyticModel, MeanJobSizeScalesResponseTime) {
  const auto p1 = make_params({1.0, 2.0}, 0.6, 1.0);
  const auto p76 = make_params({1.0, 2.0}, 0.6, 76.8);
  const Allocation a = WeightedAllocation().compute(p1.speeds, 0.6);
  EXPECT_NEAR(predicted_mean_response_time(p76, a),
              76.8 * predicted_mean_response_time(p1, a), 1e-9);
  // Response ratio is size-invariant.
  EXPECT_NEAR(predicted_mean_response_ratio(p76, a),
              predicted_mean_response_ratio(p1, a), 1e-12);
}

TEST(AnalyticModel, OptimizedBeatsWeightedInPrediction) {
  const auto p = make_params({1.0, 1.0, 1.0, 10.0}, 0.5, 76.8);
  const Allocation weighted = WeightedAllocation().compute(p.speeds, p.rho);
  const Allocation optimized =
      OptimizedAllocation().compute(p.speeds, p.rho);
  EXPECT_LT(predicted_mean_response_time(p, optimized),
            predicted_mean_response_time(p, weighted));
}

TEST(AnalyticModel, SaturatedAllocationPredictsInfinity) {
  const auto p = make_params({1.0, 10.0}, 0.5, 1.0);
  const Allocation bad({1.0, 0.0});  // λ = 5.5 on a speed-1 machine
  EXPECT_TRUE(std::isinf(predicted_mean_response_time(p, bad)));
  EXPECT_FALSE(is_stable(p, bad));
}

TEST(AnalyticModel, StabilityDetection) {
  const auto p = make_params({1.0, 10.0}, 0.5, 1.0);
  const Allocation weighted = WeightedAllocation().compute(p.speeds, p.rho);
  EXPECT_TRUE(is_stable(p, weighted));
}

TEST(AnalyticModel, PerMachineResponseTimes) {
  const auto p = make_params({1.0, 3.0}, 0.5, 1.0);
  const Allocation a({0.25, 0.75});  // λ = 2
  const auto times = predicted_machine_response_times(p, a);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 1.0 / (1.0 - 0.5), 1e-12);
  EXPECT_NEAR(times[1], 1.0 / (3.0 - 1.5), 1e-12);
}

TEST(AnalyticModel, ExcludedMachineReportsZero) {
  const auto p = make_params({1.0, 10.0}, 0.3, 1.0);
  const Allocation a = OptimizedAllocation().compute(p.speeds, p.rho);
  ASSERT_EQ(a[0], 0.0);  // slow machine excluded at low load
  const auto times = predicted_machine_response_times(p, a);
  EXPECT_EQ(times[0], 0.0);
  EXPECT_GT(times[1], 0.0);
}

TEST(AnalyticModel, SizeMismatchThrows) {
  const auto p = make_params({1.0, 2.0}, 0.5);
  const Allocation a({1.0});
  EXPECT_THROW((void)(predicted_mean_response_time(p, a)), hs::util::CheckError);
}

TEST(AnalyticModel, EquationThreeDirectForm) {
  // Cross-check Eq. (3) against its -n/λ + (1/λ)ΣsᵢμF form.
  const auto p = make_params({1.0, 1.5, 2.0, 5.0}, 0.65, 1.0);
  const Allocation a = WeightedAllocation().compute(p.speeds, p.rho);
  const double n = static_cast<double>(p.speeds.size());
  double f = 0.0;
  for (size_t i = 0; i < p.speeds.size(); ++i) {
    f += p.speeds[i] * p.mu() / (p.speeds[i] * p.mu() - a[i] * p.lambda());
  }
  const double via_f = -n / p.lambda() + f / p.lambda();
  EXPECT_NEAR(predicted_mean_response_time(p, a), via_f, 1e-10);
}

}  // namespace
