// Tests for CSV persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/csv.h"

namespace {

using namespace hs::util;

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("hs_csv_test_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
  static int counter_;
};

int CsvTest::counter_ = 0;

TEST_F(CsvTest, RoundTrip) {
  const std::vector<std::vector<double>> rows = {
      {1.0, 2.5}, {3.25, -4.0}, {1e-9, 21600.0}};
  write_numeric_csv(path_, rows, "a,b");
  const auto loaded = read_numeric_csv(path_);
  ASSERT_EQ(loaded.size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ASSERT_EQ(loaded[r].size(), rows[r].size());
    for (size_t c = 0; c < rows[r].size(); ++c) {
      EXPECT_DOUBLE_EQ(loaded[r][c], rows[r][c]);
    }
  }
}

TEST_F(CsvTest, FullPrecisionPreserved) {
  const double value = 76.80463846487648;
  write_numeric_csv(path_, {{value}});
  EXPECT_DOUBLE_EQ(read_numeric_csv(path_)[0][0], value);
}

TEST_F(CsvTest, CommentsAndBlankLinesSkipped) {
  std::ofstream out(path_);
  out << "# header comment\n\n1,2\n# mid comment\n3,4\n";
  out.close();
  const auto rows = read_numeric_csv(path_);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(rows[1][1], 4.0);
}

TEST_F(CsvTest, NonNumericFieldThrows) {
  std::ofstream out(path_);
  out << "1,banana\n";
  out.close();
  EXPECT_THROW(read_numeric_csv(path_), std::runtime_error);
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_numeric_csv("/nonexistent/dir/file.csv"),
               std::runtime_error);
}

TEST_F(CsvTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(write_numeric_csv("/nonexistent/dir/file.csv", {{1.0}}),
               std::runtime_error);
}

TEST(SplitCsvLine, BasicSplit) {
  const auto fields = split_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLine, TrailingComma) {
  const auto fields = split_csv_line("a,");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "");
}

TEST(SplitCsvLine, SingleField) {
  const auto fields = split_csv_line("42");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "42");
}

}  // namespace
