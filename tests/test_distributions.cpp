// Tests for the random variate distributions, including the paper's
// Bounded Pareto job-size model and the H2 arrival model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "rng/distributions.h"
#include "util/check.h"

namespace {

using namespace hs::rng;

// Empirical mean/variance of a distribution from n samples.
struct Empirical {
  double mean = 0.0;
  double variance = 0.0;
};

Empirical sample_stats(const Distribution& dist, int n, uint64_t seed) {
  Xoshiro256 gen(seed);
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = dist.sample(gen);
    sum += x;
    sumsq += x * x;
  }
  Empirical e;
  e.mean = sum / n;
  e.variance = sumsq / n - e.mean * e.mean;
  return e;
}

// ------------------------------------------------------------------
// Parameterized check: every finite-variance distribution's empirical
// moments must match its analytic moments.
struct MomentCase {
  const char* label;
  std::shared_ptr<const Distribution> dist;
  double mean_tol;   // relative
  double var_tol;    // relative
};

class MomentMatch : public ::testing::TestWithParam<MomentCase> {};

TEST_P(MomentMatch, EmpiricalMatchesAnalytic) {
  const MomentCase& c = GetParam();
  const Empirical e = sample_stats(*c.dist, 400000, 12345);
  EXPECT_NEAR(e.mean, c.dist->mean(), c.mean_tol * c.dist->mean() + 1e-12)
      << c.label;
  if (std::isfinite(c.dist->variance()) && c.dist->variance() > 0.0) {
    EXPECT_NEAR(e.variance, c.dist->variance(),
                c.var_tol * c.dist->variance())
        << c.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, MomentMatch,
    ::testing::Values(
        MomentCase{"exp_1", std::make_shared<Exponential>(1.0), 0.01, 0.05},
        MomentCase{"exp_20", std::make_shared<Exponential>(20.0), 0.01, 0.05},
        MomentCase{"uniform", std::make_shared<Uniform>(2.0, 8.0), 0.01, 0.05},
        MomentCase{"deterministic", std::make_shared<Deterministic>(3.5),
                   1e-12, 0.0},
        MomentCase{"h2_cv2",
                   std::make_shared<HyperExponential2>(
                       HyperExponential2::fit_mean_cv(2.2, 2.0)),
                   0.02, 0.10},
        MomentCase{"h2_cv3",
                   std::make_shared<HyperExponential2>(
                       HyperExponential2::fit_mean_cv(1.0, 3.0)),
                   0.02, 0.10},
        MomentCase{"erlang4", std::make_shared<Erlang>(4, 2.0), 0.01, 0.05},
        MomentCase{"weibull",
                   std::make_shared<Weibull>(1.5, 3.0), 0.01, 0.05},
        MomentCase{"lognormal",
                   std::make_shared<LogNormal>(0.0, 0.5), 0.01, 0.08},
        // α=2 variance converges very slowly (E[X⁴] is log-divergent),
        // hence the loose variance tolerance.
        MomentCase{"bp_alpha2",
                   std::make_shared<BoundedPareto>(10.0, 21600.0, 2.0), 0.02,
                   0.60}),
    [](const auto& info) { return info.param.label; });

// ------------------------------------------------------------------ CV

TEST(DistributionCv, ExponentialIsOne) {
  EXPECT_NEAR(Exponential(3.0).cv(), 1.0, 1e-12);
}

TEST(DistributionCv, ErlangBelowOne) {
  EXPECT_NEAR(Erlang(4, 1.0).cv(), 0.5, 1e-12);
}

TEST(DistributionCv, DeterministicIsZero) {
  EXPECT_EQ(Deterministic(5.0).cv(), 0.0);
}

// --------------------------------------------------------- HyperExp fit

TEST(HyperExpFit, MatchesTargetMeanAndCv) {
  for (double mean : {0.5, 2.2, 76.8}) {
    for (double cv : {1.0, 1.5, 2.64, 3.0, 5.0}) {
      const auto h2 = HyperExponential2::fit_mean_cv(mean, cv);
      EXPECT_NEAR(h2.mean(), mean, 1e-9 * mean) << "cv=" << cv;
      EXPECT_NEAR(h2.cv(), cv, 1e-6 * cv) << "mean=" << mean;
    }
  }
}

TEST(HyperExpFit, BalancedMeans) {
  const auto h2 = HyperExponential2::fit_mean_cv(2.0, 3.0);
  // Balanced-means property: p/rate1 == (1-p)/rate2 == mean/2.
  EXPECT_NEAR(h2.p() / h2.rate1(), 1.0, 1e-9);
  EXPECT_NEAR((1.0 - h2.p()) / h2.rate2(), 1.0, 1e-9);
}

TEST(HyperExpFit, CvBelowOneRejected) {
  EXPECT_THROW(HyperExponential2::fit_mean_cv(1.0, 0.5),
               hs::util::CheckError);
}

TEST(HyperExpFit, PaperArrivalModel) {
  // §4.1: inter-arrival CV = 3.0. Check the fit is a proper mixture.
  const auto h2 = HyperExponential2::fit_mean_cv(2.2, 3.0);
  EXPECT_GT(h2.p(), 0.5);
  EXPECT_LT(h2.p(), 1.0);
  EXPECT_GT(h2.rate1(), h2.rate2());  // frequent short gaps, rare long ones
}

// -------------------------------------------------------- BoundedPareto

TEST(BoundedPareto, PaperJobSizeMeanIs76point8) {
  // §4.1: B(k=10 s, p=21600 s, α=1.0) has average job size 76.8 s.
  const BoundedPareto bp(10.0, 21600.0, 1.0);
  EXPECT_NEAR(bp.mean(), 76.8, 0.05);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  const BoundedPareto bp(10.0, 21600.0, 1.0);
  Xoshiro256 gen(77);
  for (int i = 0; i < 200000; ++i) {
    const double x = bp.sample(gen);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 21600.0);
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesHeavyTail) {
  // α=1 converges slowly; allow a loose tolerance with many samples.
  const BoundedPareto bp(10.0, 21600.0, 1.0);
  const Empirical e = sample_stats(bp, 4000000, 321);
  EXPECT_NEAR(e.mean, bp.mean(), 0.05 * bp.mean());
}

TEST(BoundedPareto, MomentLogBranch) {
  // For α == r the moment integral has a logarithmic form.
  const BoundedPareto bp(10.0, 21600.0, 1.0);
  const double k = 10.0, p = 21600.0;
  const double expected = (k * p / (p - k)) * std::log(p / k);
  EXPECT_NEAR(bp.moment(1), expected, 1e-9 * expected);
}

TEST(BoundedPareto, MomentGeneralBranch) {
  const BoundedPareto bp(2.0, 32.0, 1.5);
  // E[X] = norm * a/(1-a) * (p^{1-a} - k^{1-a}) with a=1.5.
  const double k = 2.0, p = 32.0, a = 1.5;
  const double norm = std::pow(k, a) / (1.0 - std::pow(k / p, a));
  const double expected =
      norm * a / (1.0 - a) * (std::pow(p, 1.0 - a) - std::pow(k, 1.0 - a));
  EXPECT_NEAR(bp.mean(), expected, 1e-9 * expected);
}

TEST(BoundedPareto, SecondMomentMatchesEmpirically) {
  const BoundedPareto bp(1.0, 100.0, 2.5);
  const Empirical e = sample_stats(bp, 1000000, 55);
  const double second = bp.moment(2);
  EXPECT_NEAR(e.variance + e.mean * e.mean, second, 0.03 * second);
}

TEST(BoundedPareto, SmallerAlphaHasHeavierTail) {
  const BoundedPareto light(10.0, 21600.0, 2.0);
  const BoundedPareto heavy(10.0, 21600.0, 0.9);
  EXPECT_GT(heavy.mean(), light.mean());
}

TEST(BoundedPareto, InvalidParamsThrow) {
  EXPECT_THROW(BoundedPareto(0.0, 10.0, 1.0), hs::util::CheckError);
  EXPECT_THROW(BoundedPareto(10.0, 10.0, 1.0), hs::util::CheckError);
  EXPECT_THROW(BoundedPareto(10.0, 100.0, 0.0), hs::util::CheckError);
}

// ------------------------------------------------------------- Others

TEST(Exponential, InvalidRateThrows) {
  EXPECT_THROW(Exponential(0.0), hs::util::CheckError);
  EXPECT_THROW(Exponential(-1.0), hs::util::CheckError);
}

TEST(Uniform, ReversedBoundsThrow) {
  EXPECT_THROW(Uniform(2.0, 2.0), hs::util::CheckError);
}

TEST(Names, AreDescriptive) {
  EXPECT_NE(Exponential(2.0).name().find("2"), std::string::npos);
  EXPECT_NE(BoundedPareto(10, 21600, 1).name().find("21600"),
            std::string::npos);
  EXPECT_NE(HyperExponential2::fit_mean_cv(1, 3).name().find("HyperExp"),
            std::string::npos);
}

TEST(StandardNormal, MomentsMatch) {
  Xoshiro256 gen(101);
  const int n = 500000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = sample_standard_normal(gen);
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumsq / n, 1.0, 0.01);
}

// ------------------------------------------------------ DiscreteChoice

TEST(DiscreteChoice, FrequenciesMatchWeights) {
  DiscreteChoice choice({1.0, 2.0, 3.0, 4.0});
  Xoshiro256 gen(31);
  std::vector<int> counts(4, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    counts[choice.sample(gen)]++;
  }
  for (size_t i = 0; i < 4; ++i) {
    const double expected = choice.probability(i) * n;
    EXPECT_NEAR(counts[i], expected, 0.03 * expected) << "index " << i;
  }
}

TEST(DiscreteChoice, ZeroWeightNeverChosen) {
  DiscreteChoice choice({0.5, 0.0, 0.5});
  Xoshiro256 gen(37);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_NE(choice.sample(gen), 1u);
  }
}

TEST(DiscreteChoice, SingleWeight) {
  DiscreteChoice choice({7.0});
  Xoshiro256 gen(41);
  EXPECT_EQ(choice.sample(gen), 0u);
  EXPECT_DOUBLE_EQ(choice.probability(0), 1.0);
}

TEST(DiscreteChoice, InvalidWeightsThrow) {
  // Explicit empty vector: plain {} would be ambiguous with the copy
  // constructor now that DiscreteChoice is default-constructible.
  EXPECT_THROW(DiscreteChoice(std::vector<double>{}), hs::util::CheckError);
  EXPECT_THROW(DiscreteChoice({0.0, 0.0}), hs::util::CheckError);
  EXPECT_THROW(DiscreteChoice({1.0, -0.5}), hs::util::CheckError);
}

TEST(DiscreteChoice, ProbabilitiesNormalized) {
  DiscreteChoice choice({2.0, 6.0});
  EXPECT_DOUBLE_EQ(choice.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(choice.probability(1), 0.75);
}

}  // namespace
