// Tests for the weighted and equal allocation schemes.
#include <gtest/gtest.h>

#include <vector>

#include "alloc/scheme.h"
#include "util/check.h"

namespace {

using hs::alloc::Allocation;
using hs::alloc::EqualAllocation;
using hs::alloc::WeightedAllocation;

TEST(WeightedScheme, ProportionalToSpeed) {
  const std::vector<double> speeds = {1.0, 3.0, 4.0};
  const Allocation a = WeightedAllocation().compute(speeds, 0.7);
  EXPECT_NEAR(a[0], 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(a[1], 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(a[2], 4.0 / 8.0, 1e-12);
}

TEST(WeightedScheme, IndependentOfRho) {
  const std::vector<double> speeds = {2.0, 5.0};
  const Allocation lo = WeightedAllocation().compute(speeds, 0.1);
  const Allocation hi = WeightedAllocation().compute(speeds, 0.9);
  EXPECT_DOUBLE_EQ(lo[0], hi[0]);
  EXPECT_DOUBLE_EQ(lo[1], hi[1]);
}

TEST(WeightedScheme, EqualizesMachineUtilizations) {
  const std::vector<double> speeds = {1.0, 1.5, 2.0, 10.0};
  const double rho = 0.6;
  const Allocation a = WeightedAllocation().compute(speeds, rho);
  for (double u : a.machine_utilizations(speeds, rho)) {
    EXPECT_NEAR(u, rho, 1e-12);
  }
}

TEST(WeightedScheme, HomogeneousIsEqualShare) {
  const std::vector<double> speeds = {2.0, 2.0, 2.0, 2.0};
  const Allocation a = WeightedAllocation().compute(speeds, 0.5);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a[i], 0.25, 1e-12);
  }
}

TEST(WeightedScheme, SingleMachineGetsEverything) {
  const Allocation a = WeightedAllocation().compute(std::vector<double>{3.0},
                                                    0.7);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
}

TEST(EqualScheme, UniformFractions) {
  const std::vector<double> speeds = {1.0, 2.0, 3.0, 4.0, 10.0};
  const Allocation a = EqualAllocation().compute(speeds, 0.2);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_NEAR(a[i], 0.2, 1e-12);
  }
}

TEST(EqualScheme, RejectsSaturatingLoad) {
  // Equal shares on {1, 10}: machine of speed 1 receives ρ·11/2 of base
  // work per second — saturated for ρ >= 2/11.
  const std::vector<double> speeds = {1.0, 10.0};
  EXPECT_NO_THROW(EqualAllocation().compute(speeds, 0.15));
  EXPECT_THROW(EqualAllocation().compute(speeds, 0.5),
               hs::util::CheckError);
}

TEST(SchemeInputs, Validation) {
  const std::vector<double> bad_speed = {1.0, -1.0};
  const std::vector<double> ok = {1.0, 2.0};
  EXPECT_THROW(WeightedAllocation().compute(bad_speed, 0.5),
               hs::util::CheckError);
  EXPECT_THROW(WeightedAllocation().compute(ok, 0.0), hs::util::CheckError);
  EXPECT_THROW(WeightedAllocation().compute(ok, 1.0), hs::util::CheckError);
  EXPECT_THROW(WeightedAllocation().compute(std::vector<double>{}, 0.5),
               hs::util::CheckError);
}

TEST(SchemeNames, AreStable) {
  EXPECT_EQ(WeightedAllocation().name(), "weighted");
  EXPECT_EQ(EqualAllocation().name(), "equal");
}

}  // namespace
