// write_file_atomic failure-path coverage.
//
// The function's contract is crash-consistency: on ANY failure it
// throws util::CheckError and leaves the filesystem exactly as it was —
// no temporary, no partial target, the old payload intact. The failure
// conditions themselves (disk full mid-payload, fsync I/O error, an
// unwritable target directory) cannot be provoked portably from a test
// — CI runs as root, where permission bits are advisory — so these
// tests drive the util::testing::AtomicFileFailureInjection syscall
// knobs instead and assert the contract holds on every exit path.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/atomic_file.h"
#include "util/check.h"

namespace {

namespace fs = std::filesystem;
using hs::util::CheckError;
using hs::util::write_file_atomic;
using hs::util::testing::atomic_file_failures;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Fresh scratch directory per test; injection state always reset.
class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hs_atomic_file_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    target_ = (dir_ / "out.bin").string();
    atomic_file_failures.reset();
  }

  void TearDown() override {
    atomic_file_failures.reset();
    fs::remove_all(dir_);
  }

  /// The invariant every failure path must leave behind.
  void expect_untouched(const std::string& expected_content) {
    EXPECT_FALSE(fs::exists(target_ + ".tmp"))
        << "failure path leaked a temporary file";
    if (expected_content.empty()) {
      EXPECT_FALSE(fs::exists(target_))
          << "failure path materialized a partial target";
    } else {
      ASSERT_TRUE(fs::exists(target_));
      EXPECT_EQ(read_file(target_), expected_content)
          << "failure path tore the previous payload";
    }
  }

  fs::path dir_;
  std::string target_;
};

TEST_F(AtomicFileTest, WritesAndReplacesWholePayload) {
  const std::string first = "first payload";
  write_file_atomic(target_, first.data(), first.size());
  EXPECT_EQ(read_file(target_), first);
  EXPECT_FALSE(fs::exists(target_ + ".tmp"));

  const std::string second(100000, 'x');
  write_file_atomic(target_, second.data(), second.size());
  EXPECT_EQ(read_file(target_), second);
  EXPECT_FALSE(fs::exists(target_ + ".tmp"));
}

TEST_F(AtomicFileTest, RidesOutShortWrites) {
  // Every write() returns at most 7 bytes: the retry loop must stitch
  // the payload together without loss or reordering.
  atomic_file_failures.short_write_limit = 7;
  std::string payload;
  for (int i = 0; i < 1000; ++i) {
    payload += "block-" + std::to_string(i) + ";";
  }
  write_file_atomic(target_, payload.data(), payload.size());
  EXPECT_EQ(read_file(target_), payload);
}

TEST_F(AtomicFileTest, DiskFullMidPayloadThrowsAndCleansUp) {
  const std::string old = "previous content";
  write_file_atomic(target_, old.data(), old.size());

  // The disk "fills" after 10 bytes of a 64-byte payload: a short write
  // followed by a hard ENOSPC.
  atomic_file_failures.fail_write_after = 10;
  const std::string payload(64, 'y');
  EXPECT_THROW(write_file_atomic(target_, payload.data(), payload.size()),
               CheckError);
  expect_untouched(old);
}

TEST_F(AtomicFileTest, DiskFullOnFirstWriteThrowsAndCleansUp) {
  atomic_file_failures.fail_write_after = 0;
  const std::string payload = "never lands";
  EXPECT_THROW(write_file_atomic(target_, payload.data(), payload.size()),
               CheckError);
  expect_untouched("");
}

TEST_F(AtomicFileTest, FsyncFailureThrowsAndCleansUp) {
  const std::string old = "durable old state";
  write_file_atomic(target_, old.data(), old.size());

  atomic_file_failures.fail_fsync = true;
  const std::string payload = "would be lost by a power cut";
  EXPECT_THROW(write_file_atomic(target_, payload.data(), payload.size()),
               CheckError);
  expect_untouched(old);
}

TEST_F(AtomicFileTest, RenameFailureThrowsAndCleansUp) {
  const std::string old = "still the published version";
  write_file_atomic(target_, old.data(), old.size());

  // Models rename() onto an unwritable directory (EACCES).
  atomic_file_failures.fail_rename = true;
  const std::string payload = "never published";
  EXPECT_THROW(write_file_atomic(target_, payload.data(), payload.size()),
               CheckError);
  expect_untouched(old);
}

TEST_F(AtomicFileTest, MissingDirectoryThrows) {
  const std::string bogus = (dir_ / "no_such_dir" / "out.bin").string();
  const std::string payload = "x";
  EXPECT_THROW(write_file_atomic(bogus, payload.data(), payload.size()),
               CheckError);
  EXPECT_FALSE(fs::exists(bogus));
  EXPECT_FALSE(fs::exists(bogus + ".tmp"));
}

TEST_F(AtomicFileTest, EmptyPathThrows) {
  EXPECT_THROW(write_file_atomic("", "x", 1), CheckError);
}

TEST_F(AtomicFileTest, InjectionOffAfterReset) {
  atomic_file_failures.fail_fsync = true;
  atomic_file_failures.reset();
  const std::string payload = "clean again";
  write_file_atomic(target_, payload.data(), payload.size());
  EXPECT_EQ(read_file(target_), payload);
}

}  // namespace
