// Tests for the finite-quantum round-robin server, including its
// convergence to processor sharing as the quantum shrinks.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "queueing/ps_server.h"
#include "queueing/rr_server.h"
#include "rng/distributions.h"
#include "sim/simulator.h"
#include "stats/running_stats.h"
#include "util/check.h"

namespace {

using hs::queueing::Completion;
using hs::queueing::Job;
using hs::queueing::PsServer;
using hs::queueing::RrServer;
using hs::sim::Simulator;

struct Harness {
  Simulator sim;
  RrServer server;
  std::vector<Completion> completions;

  explicit Harness(double speed, double quantum)
      : server(sim, speed, 0, quantum) {
    server.set_completion_callback(
        [this](const Completion& c) { completions.push_back(c); });
  }

  void arrive_at(double t, uint64_t id, double size) {
    sim.schedule_at(t, [this, id, size, t] {
      server.arrive(Job{id, t, size});
    });
  }

  std::map<uint64_t, double> departures() {
    std::map<uint64_t, double> result;
    for (const auto& c : completions) {
      result[c.job.id] = c.departure_time;
    }
    return result;
  }
};

TEST(RrServer, SingleJobUnaffectedByQuantum) {
  Harness h(1.0, 1.0);
  h.arrive_at(0.0, 1, 3.5);
  h.sim.run_all();
  EXPECT_NEAR(h.departures()[1], 3.5, 1e-9);
}

TEST(RrServer, AlternatesSlicesBetweenJobs) {
  // Quantum 1, speed 1: A(3) and B(2) both at t=0.
  // Slices: A[0,1) B[1,2) A[2,3) B[3,4) => B done at 4; A[4,5) done at 5.
  Harness h(1.0, 1.0);
  h.arrive_at(0.0, 1, 3.0);
  h.arrive_at(0.0, 2, 2.0);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_NEAR(d[2], 4.0, 1e-9);
  EXPECT_NEAR(d[1], 5.0, 1e-9);
}

TEST(RrServer, LateArrivalJoinsTailOfCycle) {
  // Quantum 1, speed 1: A(2) at 0, B(1) at 0.5.
  // A[0,1); B joins during A's slice => B[1,2) done 2; A[2,3) done 3.
  Harness h(1.0, 1.0);
  h.arrive_at(0.0, 1, 2.0);
  h.arrive_at(0.5, 2, 1.0);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_NEAR(d[2], 2.0, 1e-9);
  EXPECT_NEAR(d[1], 3.0, 1e-9);
}

TEST(RrServer, PartialFinalSlice) {
  // Size 2.5, quantum 1: slices 1+1+0.5 => done at 2.5.
  Harness h(1.0, 1.0);
  h.arrive_at(0.0, 1, 2.5);
  h.sim.run_all();
  EXPECT_NEAR(h.departures()[1], 2.5, 1e-9);
}

TEST(RrServer, SpeedScalesSliceWork) {
  // Speed 2, quantum 1 => each slice completes 2 units of work.
  Harness h(2.0, 1.0);
  h.arrive_at(0.0, 1, 4.0);
  h.arrive_at(0.0, 2, 4.0);
  h.sim.run_all();
  auto d = h.departures();
  // A[0,1) done 2/4, B[1,2), A[2,3) done, B[3,4) done.
  EXPECT_NEAR(d[1], 3.0, 1e-9);
  EXPECT_NEAR(d[2], 4.0, 1e-9);
}

TEST(RrServer, BusyTimeTracked) {
  Harness h(1.0, 0.5);
  h.arrive_at(0.0, 1, 2.0);
  h.sim.run_until(10.0);
  EXPECT_NEAR(h.server.busy_time(), 2.0, 1e-9);
}

TEST(RrServer, InvalidQuantumThrows) {
  Simulator sim;
  EXPECT_THROW(RrServer(sim, 1.0, 0, 0.0), hs::util::CheckError);
}

TEST(RrServer, TinyFinalSliceAtLargeTimestampTerminates) {
  // Regression: when the final slice is so short that the simulation
  // clock cannot represent the advance (now + duration == now at large
  // timestamps), deriving the work done from elapsed time reads as zero
  // and respawns the same slice forever. The server must instead credit
  // the scheduled slice work and complete the job.
  Harness h(1.0, 0.01);
  const double t0 = 1.0e5;  // clock resolution here is ~1.5e-11 s
  const double size = 5 * 0.01 + 1e-13;  // final slice of 1e-13 work
  h.arrive_at(t0, 1, size);
  h.sim.run_all();  // would never return before the fix
  ASSERT_EQ(h.departures().size(), 1u);
  EXPECT_NEAR(h.departures()[1], t0 + size, 1e-6);
}

TEST(RrServer, ConvergesToProcessorSharing) {
  // Same arrival sequence through a PS server and RR servers with
  // shrinking quantum: mean response time must approach the PS value.
  hs::rng::Xoshiro256 gen(777);
  hs::rng::Exponential interarrival(0.6);
  hs::rng::Exponential sizes(1.0);
  struct Arrival {
    double t;
    double size;
  };
  std::vector<Arrival> arrivals;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += interarrival.sample(gen);
    arrivals.push_back({t, sizes.sample(gen)});
  }

  auto run_ps = [&]() {
    Simulator sim;
    PsServer server(sim, 1.0, 0);
    hs::stats::RunningStats response;
    server.set_completion_callback([&](const Completion& c) {
      response.add(c.response_time());
    });
    for (size_t i = 0; i < arrivals.size(); ++i) {
      const auto& a = arrivals[i];
      sim.schedule_at(a.t, [&server, i, &arrivals] {
        server.arrive(Job{i, arrivals[i].t, arrivals[i].size});
      });
    }
    sim.run_all();
    return response.mean();
  };

  auto run_rr = [&](double quantum) {
    Simulator sim;
    RrServer server(sim, 1.0, 0, quantum);
    hs::stats::RunningStats response;
    server.set_completion_callback([&](const Completion& c) {
      response.add(c.response_time());
    });
    for (size_t i = 0; i < arrivals.size(); ++i) {
      const auto& a = arrivals[i];
      sim.schedule_at(a.t, [&server, i, &arrivals] {
        server.arrive(Job{i, arrivals[i].t, arrivals[i].size});
      });
    }
    sim.run_all();
    return response.mean();
  };

  const double ps = run_ps();
  const double rr_fine = run_rr(0.01);
  const double rr_coarse = run_rr(2.0);
  EXPECT_NEAR(rr_fine, ps, 0.02 * ps);
  // A coarse quantum deviates more than a fine one.
  EXPECT_GT(std::abs(rr_coarse - ps), std::abs(rr_fine - ps));
}

}  // namespace
