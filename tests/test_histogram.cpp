// Tests for the fixed-bin histogram.
#include <gtest/gtest.h>

#include "rng/distributions.h"
#include "stats/histogram.h"
#include "util/check.h"

namespace {

using hs::stats::Histogram;

TEST(Histogram, LinearBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderflowOverflowCounted) {
  Histogram h(1.0, 2.0, 4);
  h.add(0.5);
  h.add(2.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinRangesTileTheDomain) {
  Histogram h(2.0, 12.0, 5);
  double expected_lo = 2.0;
  for (size_t b = 0; b < h.bin_count(); ++b) {
    const auto [lo, hi] = h.bin_range(b);
    EXPECT_DOUBLE_EQ(lo, expected_lo);
    EXPECT_NEAR(hi - lo, 2.0, 1e-12);
    expected_lo = hi;
  }
  EXPECT_DOUBLE_EQ(expected_lo, 12.0);
}

TEST(Histogram, LogBinningCoversDecades) {
  Histogram h(1.0, 1000.0, 3, Histogram::Scale::kLog);
  h.add(2.0);    // decade 1
  h.add(20.0);   // decade 2
  h.add(200.0);  // decade 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  const auto [lo1, hi1] = h.bin_range(1);
  EXPECT_NEAR(lo1, 10.0, 1e-9);
  EXPECT_NEAR(hi1, 100.0, 1e-9);
}

TEST(Histogram, LogScaleNeedsPositiveLo) {
  EXPECT_THROW((void)(Histogram(0.0, 10.0, 4, Histogram::Scale::kLog)),
               hs::util::CheckError);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  hs::rng::Xoshiro256 gen(8);
  for (int i = 0; i < 100000; ++i) {
    h.add(gen.next_double());
  }
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)(h.quantile(0.5)), hs::util::CheckError);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(20);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW((void)(Histogram(1.0, 1.0, 4)), hs::util::CheckError);
  EXPECT_THROW((void)(Histogram(0.0, 1.0, 0)), hs::util::CheckError);
}

TEST(Histogram, OutOfRangeBinAccessThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)(h.count(2)), hs::util::CheckError);
  EXPECT_THROW((void)(h.bin_range(2)), hs::util::CheckError);
}

TEST(Histogram, MergeAddsCountsPerBin) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);  // bin 0
  a.add(5.0);  // bin 2
  b.add(1.5);  // bin 0
  b.add(9.0);  // bin 4
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.count(4), 1u);
  EXPECT_EQ(a.total(), 4u);
  // The source histogram is untouched.
  EXPECT_EQ(b.total(), 2u);
  EXPECT_EQ(b.count(0), 1u);
}

TEST(Histogram, MergeAddsUnderflowAndOverflow) {
  Histogram a(1.0, 2.0, 2);
  Histogram b(1.0, 2.0, 2);
  a.add(0.5);
  b.add(0.25);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.underflow(), 2u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a(0.0, 1.0, 4);
  a.add(0.1);
  a.add(0.9);
  Histogram empty(0.0, 1.0, 4);
  a.merge(empty);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.count(3), 1u);
}

TEST(Histogram, MergeMatchesSingleHistogramFill) {
  // Split one sample stream across two histograms, merge, and compare
  // against a histogram that saw everything — the use case: combining
  // per-replication distributions filled on worker threads.
  Histogram combined(0.1, 100.0, 16, Histogram::Scale::kLog);
  Histogram part1(0.1, 100.0, 16, Histogram::Scale::kLog);
  Histogram part2(0.1, 100.0, 16, Histogram::Scale::kLog);
  hs::rng::Xoshiro256 gen(20260806);
  for (int i = 0; i < 10000; ++i) {
    const double x = 200.0 * gen.next_double();
    combined.add(x);
    (i % 2 == 0 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  ASSERT_EQ(part1.total(), combined.total());
  EXPECT_EQ(part1.underflow(), combined.underflow());
  EXPECT_EQ(part1.overflow(), combined.overflow());
  for (size_t bin = 0; bin < combined.bin_count(); ++bin) {
    EXPECT_EQ(part1.count(bin), combined.count(bin)) << "bin " << bin;
  }
  EXPECT_DOUBLE_EQ(part1.quantile(0.5), combined.quantile(0.5));
}

TEST(Histogram, MergeRejectsMismatchedBinning) {
  Histogram base(0.0, 10.0, 5);
  Histogram wrong_bounds(0.0, 20.0, 5);
  Histogram wrong_bins(0.0, 10.0, 10);
  Histogram wrong_scale(1.0, 10.0, 5, Histogram::Scale::kLog);
  Histogram wrong_scale_peer(1.0, 10.0, 5);
  EXPECT_THROW(base.merge(wrong_bounds), hs::util::CheckError);
  EXPECT_THROW(base.merge(wrong_bins), hs::util::CheckError);
  EXPECT_THROW(wrong_scale_peer.merge(wrong_scale), hs::util::CheckError);
}

}  // namespace
