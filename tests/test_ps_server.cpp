// Tests for the exact processor-sharing server, including validation
// against M/M/1-PS closed forms (Eqs. 1–2 of the paper).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "queueing/mm1.h"
#include "queueing/ps_server.h"
#include "rng/distributions.h"
#include "sim/simulator.h"
#include "stats/running_stats.h"
#include "util/check.h"

namespace {

using hs::queueing::Completion;
using hs::queueing::Job;
using hs::queueing::PsServer;
using hs::sim::Simulator;

struct Harness {
  Simulator sim;
  PsServer server;
  std::vector<Completion> completions;

  explicit Harness(double speed = 1.0) : server(sim, speed, 0) {
    server.set_completion_callback(
        [this](const Completion& c) { completions.push_back(c); });
  }

  void arrive_at(double t, uint64_t id, double size) {
    sim.schedule_at(t, [this, id, size, t] {
      server.arrive(Job{id, t, size});
    });
  }

  std::map<uint64_t, double> departures() {
    std::map<uint64_t, double> result;
    for (const auto& c : completions) {
      result[c.job.id] = c.departure_time;
    }
    return result;
  }
};

TEST(PsServer, SingleJobRunsAtFullSpeed) {
  Harness h(1.0);
  h.arrive_at(0.0, 1, 5.0);
  h.sim.run_all();
  EXPECT_DOUBLE_EQ(h.departures()[1], 5.0);
}

TEST(PsServer, SpeedScalesServiceTime) {
  Harness h(2.0);
  h.arrive_at(1.0, 1, 5.0);
  h.sim.run_all();
  EXPECT_DOUBLE_EQ(h.departures()[1], 1.0 + 2.5);
}

TEST(PsServer, TwoOverlappingJobsShareCapacity) {
  // Speed 1; A(size 2) at t=0, B(size 2) at t=1.
  // A alone on [0,1) then both share: A finishes at 3, B at 4.
  Harness h(1.0);
  h.arrive_at(0.0, 1, 2.0);
  h.arrive_at(1.0, 2, 2.0);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_NEAR(d[1], 3.0, 1e-9);
  EXPECT_NEAR(d[2], 4.0, 1e-9);
}

TEST(PsServer, ThreeSimultaneousJobsDepartBySize) {
  // Sizes 1, 2, 3 at t=0 on speed 1: departures at 3, 5, 6.
  Harness h(1.0);
  h.arrive_at(0.0, 1, 1.0);
  h.arrive_at(0.0, 2, 2.0);
  h.arrive_at(0.0, 3, 3.0);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_NEAR(d[1], 3.0, 1e-9);
  EXPECT_NEAR(d[2], 5.0, 1e-9);
  EXPECT_NEAR(d[3], 6.0, 1e-9);
}

TEST(PsServer, EqualSizeJobsDepartTogether) {
  Harness h(1.0);
  h.arrive_at(0.0, 1, 2.0);
  h.arrive_at(0.0, 2, 2.0);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_NEAR(d[1], 4.0, 1e-9);
  EXPECT_NEAR(d[2], 4.0, 1e-9);
}

TEST(PsServer, IdlePeriodsDoNotServeWork) {
  Harness h(1.0);
  h.arrive_at(0.0, 1, 1.0);
  h.arrive_at(10.0, 2, 1.0);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_NEAR(d[1], 1.0, 1e-9);
  EXPECT_NEAR(d[2], 11.0, 1e-9);
}

TEST(PsServer, QueueLengthTracksActiveJobs) {
  Harness h(1.0);
  h.arrive_at(0.0, 1, 10.0);
  h.arrive_at(1.0, 2, 10.0);
  h.sim.run_until(2.0);
  EXPECT_EQ(h.server.queue_length(), 2u);
  h.sim.run_all();
  EXPECT_EQ(h.server.queue_length(), 0u);
}

TEST(PsServer, BusyTimeAndUtilization) {
  Harness h(2.0);
  h.arrive_at(0.0, 1, 4.0);  // busy [0, 2)
  h.sim.run_until(8.0);
  EXPECT_NEAR(h.server.busy_time(), 2.0, 1e-9);
  EXPECT_NEAR(h.server.utilization(), 0.25, 1e-9);
  EXPECT_NEAR(h.server.work_done(), 4.0, 1e-9);
}

TEST(PsServer, CompletedJobsCounter) {
  Harness h(1.0);
  for (int i = 0; i < 5; ++i) {
    h.arrive_at(static_cast<double>(10 * i), static_cast<uint64_t>(i), 1.0);
  }
  h.sim.run_all();
  EXPECT_EQ(h.server.completed_jobs(), 5u);
}

TEST(PsServer, ZeroSizeJobRejected) {
  Harness h(1.0);
  EXPECT_THROW(h.server.arrive(Job{1, 0.0, 0.0}), hs::util::CheckError);
}

TEST(PsServer, ResponseTimesPreservedInCompletion) {
  Harness h(1.0);
  h.arrive_at(2.0, 7, 3.0);
  h.sim.run_all();
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_NEAR(h.completions[0].response_time(), 3.0, 1e-9);
  EXPECT_NEAR(h.completions[0].response_ratio(), 1.0, 1e-9);
  EXPECT_EQ(h.completions[0].machine, 0);
}

// ---------------------------------------------------------------------
// Statistical validation: M/M/1-PS mean response time is 1/(μ−λ) and
// mean response ratio 1/(1−ρ) — Eqs. (1)–(2) of the paper.
struct Mm1Case {
  const char* label;
  double lambda;
  double mu;
  double speed;
};

class PsServerMm1 : public ::testing::TestWithParam<Mm1Case> {};

TEST_P(PsServerMm1, MatchesClosedForm) {
  const auto& c = GetParam();
  Harness h(c.speed);
  hs::rng::Xoshiro256 gen(9001);
  hs::rng::Exponential interarrival(c.lambda);
  // Service rate of the machine is speed·mu <=> sizes have mean 1/mu
  // in base-speed seconds scaled so that mu is the base rate.
  hs::rng::Exponential size_dist(c.mu);

  hs::stats::RunningStats response, ratio;
  h.server.set_completion_callback([&](const Completion& comp) {
    response.add(comp.response_time());
    ratio.add(comp.response_ratio());
  });

  const int n_jobs = 300000;
  double t = 0.0;
  for (int i = 0; i < n_jobs; ++i) {
    t += interarrival.sample(gen);
    const double size = size_dist.sample(gen);
    h.sim.schedule_at(t, [&h, i, t, size] {
      h.server.arrive(Job{static_cast<uint64_t>(i), t, size});
    });
    // Keep the pending-event set small: run up to this arrival.
    h.sim.run_until(t);
  }
  h.sim.run_all();

  const double effective_mu = c.speed * c.mu;
  const double expected_t =
      hs::queueing::mm1::ps_mean_response_time(c.lambda, effective_mu);
  EXPECT_NEAR(response.mean(), expected_t, 0.05 * expected_t) << c.label;

  // Response ratio uses base-speed size: E[R] = 1/(s(1−ρ)) per §2.3.
  const double rho = c.lambda / effective_mu;
  const double expected_r = 1.0 / (c.speed * (1.0 - rho));
  EXPECT_NEAR(ratio.mean(), expected_r, 0.05 * expected_r) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Loads, PsServerMm1,
    ::testing::Values(Mm1Case{"rho30", 0.3, 1.0, 1.0},
                      Mm1Case{"rho70", 0.7, 1.0, 1.0},
                      Mm1Case{"rho90", 0.9, 1.0, 1.0},
                      Mm1Case{"fast_machine", 1.4, 1.0, 2.0}),
    [](const auto& info) { return info.param.label; });

// Differential test: the event-driven virtual-work PS server must match
// a brute-force reference that directly integrates each job's remaining
// work between events (O(n) per step), on randomized arrival patterns.
namespace brute {

struct RefJob {
  uint64_t id;
  double arrival;
  double remaining;
};

// Returns departure time per job id.
std::map<uint64_t, double> simulate_ps(
    const std::vector<std::pair<double, double>>& arrivals, double speed) {
  std::map<uint64_t, double> departures;
  std::vector<RefJob> active;
  size_t next = 0;
  double now = 0.0;
  while (next < arrivals.size() || !active.empty()) {
    // Next departure if the system runs undisturbed.
    double t_depart = std::numeric_limits<double>::infinity();
    if (!active.empty()) {
      double min_remaining = std::numeric_limits<double>::infinity();
      for (const RefJob& job : active) {
        min_remaining = std::min(min_remaining, job.remaining);
      }
      t_depart =
          now + min_remaining * static_cast<double>(active.size()) / speed;
    }
    const double t_arrive = next < arrivals.size()
                                ? arrivals[next].first
                                : std::numeric_limits<double>::infinity();
    const double t_next = std::min(t_depart, t_arrive);
    // Progress every active job by the elapsed share.
    if (!active.empty()) {
      const double each =
          (t_next - now) * speed / static_cast<double>(active.size());
      for (RefJob& job : active) {
        job.remaining -= each;
      }
    }
    now = t_next;
    if (t_next == t_arrive && next < arrivals.size()) {
      active.push_back(
          RefJob{next, arrivals[next].first, arrivals[next].second});
      ++next;
    }
    // Emit all departures (remaining ~ 0).
    for (auto it = active.begin(); it != active.end();) {
      if (it->remaining <= 1e-9) {
        departures[it->id] = now;
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }
  return departures;
}

}  // namespace brute

class PsServerDifferential : public ::testing::TestWithParam<int> {};

TEST_P(PsServerDifferential, MatchesBruteForceReference) {
  hs::rng::Xoshiro256 gen(static_cast<uint64_t>(GetParam()) * 48271 + 11);
  const double speed = gen.uniform(0.5, 4.0);
  std::vector<std::pair<double, double>> arrivals;
  double t = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    t += gen.uniform(0.0, 2.0);
    arrivals.emplace_back(t, gen.uniform(0.1, 5.0));
  }

  const auto expected = brute::simulate_ps(arrivals, speed);

  Harness h(speed);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    h.arrive_at(arrivals[i].first, i, arrivals[i].second);
  }
  h.sim.run_all();
  const auto actual = h.departures();

  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [id, depart] : expected) {
    ASSERT_TRUE(actual.contains(id)) << "job " << id;
    EXPECT_NEAR(actual.at(id), depart, 1e-6) << "job " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, PsServerDifferential,
                         ::testing::Range(1, 16));

// M/G/1-PS insensitivity: with heavy-tailed (Bounded Pareto) sizes the
// mean response time still follows E[S]/(1−ρ).
TEST(PsServer, InsensitivityToSizeDistribution) {
  Harness h(1.0);
  hs::rng::Xoshiro256 gen(424242);
  hs::rng::BoundedPareto sizes(1.0, 100.0, 1.5);
  const double mean_size = sizes.mean();
  const double rho = 0.6;
  const double lambda = rho / mean_size;
  hs::rng::Exponential interarrival(lambda);

  hs::stats::RunningStats response;
  h.server.set_completion_callback([&](const Completion& comp) {
    response.add(comp.response_time());
  });

  double t = 0.0;
  for (int i = 0; i < 400000; ++i) {
    t += interarrival.sample(gen);
    const double size = sizes.sample(gen);
    h.sim.schedule_at(t, [&h, i, t, size] {
      h.server.arrive(Job{static_cast<uint64_t>(i), t, size});
    });
    h.sim.run_until(t);
  }
  h.sim.run_all();

  const double expected = mean_size / (1.0 - rho);
  EXPECT_NEAR(response.mean(), expected, 0.08 * expected);
}

}  // namespace
