// Tests for the xoshiro256** generator and stream splitting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::rng::derive_seed;
using hs::rng::SplitMix64;
using hs::rng::Xoshiro256;

TEST(SplitMix, DeterministicSequence) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicSequence) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Xoshiro, LowEntropySeedsStillWellSeparated) {
  Xoshiro256 a(0);
  Xoshiro256 b(1);
  int identical = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++identical;
    }
  }
  EXPECT_EQ(identical, 0);
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 gen(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = gen.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, DoubleOpen0NeverZero) {
  Xoshiro256 gen(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = gen.next_double_open0();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_TRUE(std::isfinite(std::log(u)));
  }
}

TEST(Xoshiro, UniformMeanAndVariance) {
  Xoshiro256 gen(11);
  const int n = 1000000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = gen.next_double();
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.002);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 gen(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256 gen(17);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(gen.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowZeroThrows) {
  Xoshiro256 gen(1);
  EXPECT_THROW(gen.next_below(0), hs::util::CheckError);
}

TEST(Xoshiro, NextBelowRoughlyUniform) {
  Xoshiro256 gen(19);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[gen.next_below(bound)]++;
  }
  for (uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(counts[k], n / static_cast<int>(bound), 500);
  }
}

TEST(Xoshiro, JumpProducesDisjointPrefix) {
  Xoshiro256 base(99);
  Xoshiro256 jumped = base;
  jumped.jump();
  std::set<uint64_t> base_values;
  for (int i = 0; i < 10000; ++i) {
    base_values.insert(base.next_u64());
  }
  int collisions = 0;
  for (int i = 0; i < 10000; ++i) {
    if (base_values.contains(jumped.next_u64())) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro, StreamKMatchesKJumps) {
  Xoshiro256 base(5);
  Xoshiro256 manual = base;
  manual.jump();
  manual.jump();
  Xoshiro256 stream2 = base.stream(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(manual.next_u64(), stream2.next_u64());
  }
}

TEST(Xoshiro, StreamZeroIsCopy) {
  Xoshiro256 base(5);
  Xoshiro256 copy = base.stream(0);
  Xoshiro256 original = base;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(copy.next_u64(), original.next_u64());
  }
}

TEST(DeriveSeed, DistinctAcrossComponents) {
  std::set<uint64_t> seeds;
  for (uint64_t rep = 0; rep < 20; ++rep) {
    for (uint64_t component = 0; component < 20; ++component) {
      seeds.insert(derive_seed(42, rep, component));
    }
  }
  EXPECT_EQ(seeds.size(), 400u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(2, 2, 3));
}

TEST(Xoshiro, StdUniformBitGeneratorConcept) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ull);
  Xoshiro256 gen(3);
  EXPECT_NE(gen(), gen());
}

}  // namespace
