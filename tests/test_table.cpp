// Tests for the table renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"
#include "util/table.h"

namespace {

using hs::util::TablePrinter;

TEST(TablePrinter, AlignedOutputContainsAllCells) {
  TablePrinter table({"policy", "ratio", "fairness"});
  table.begin_row();
  table.cell("ORR");
  table.cell(1.2345, 2);
  table.cell(0.5, 3);
  table.begin_row();
  table.cell("WRAN");
  table.cell(2.0, 2);
  table.cell(1.25, 3);
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("ORR"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("0.500"), std::string::npos);
  EXPECT_NE(out.find("WRAN"), std::string::npos);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"x", "y"});
  std::ostringstream oss;
  table.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\nx,y\n");
}

TEST(TablePrinter, RowCountTracksRows) {
  TablePrinter table({"only"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"r1"});
  table.add_row({"r2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinter, WrongWidthRowThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), hs::util::CheckError);
}

TEST(TablePrinter, TooManyCellsThrows) {
  TablePrinter table({"a"});
  table.begin_row();
  table.cell("1");
  EXPECT_THROW(table.cell("2"), hs::util::CheckError);
}

TEST(TablePrinter, CellBeforeBeginRowThrows) {
  TablePrinter table({"a"});
  EXPECT_THROW(table.cell("1"), hs::util::CheckError);
}

TEST(TablePrinter, EmptyHeadersThrow) {
  EXPECT_THROW(TablePrinter({}), hs::util::CheckError);
}

TEST(TablePrinter, LongCellWidensColumn) {
  TablePrinter table({"h"});
  table.add_row({"a-very-long-cell-value"});
  std::ostringstream oss;
  table.print(oss);
  // Header line must be padded at least as wide as the long cell.
  const std::string out = oss.str();
  const size_t header_end = out.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_GE(header_end, std::string("a-very-long-cell-value").size());
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(hs::util::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(hs::util::format_double(2.0, 0), "2");
  EXPECT_EQ(hs::util::format_double(-0.5, 1), "-0.5");
}

}  // namespace
