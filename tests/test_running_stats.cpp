// Tests for the streaming moment accumulator.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.h"
#include "stats/running_stats.h"
#include "util/math_util.h"

namespace {

using hs::stats::RunningStats;

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.2);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.2);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.2);
  EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.population_stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NumericallyStableForLargeOffset) {
  // Classic Welford test: large mean, small variance.
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0}) {
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), offset + 10.0, 1e-5);
  EXPECT_NEAR(s.variance(), 30.0, 1e-4);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// Property: merging any split of a sample equals accumulating the whole.
class MergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergeProperty, SplitMergeEqualsWhole) {
  hs::rng::Xoshiro256 gen(static_cast<uint64_t>(GetParam()));
  std::vector<double> data;
  const int n = 1000 + GetParam() * 37;
  data.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    data.push_back(gen.uniform(-50.0, 150.0));
  }
  const size_t split = gen.next_below(static_cast<uint64_t>(n - 1)) + 1;

  RunningStats whole, left, right;
  for (size_t i = 0; i < data.size(); ++i) {
    whole.add(data[i]);
    (i < split ? left : right).add(data[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9 * std::fabs(whole.mean()));
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8 * whole.variance());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(RandomSplits, MergeProperty,
                         ::testing::Range(1, 11));

TEST(RunningStats, MatchesDirectComputation) {
  hs::rng::Xoshiro256 gen(99);
  std::vector<double> data;
  RunningStats s;
  for (int i = 0; i < 10000; ++i) {
    const double x = gen.uniform(0.0, 10.0);
    data.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), hs::util::mean(data), 1e-10);
  EXPECT_NEAR(s.stddev(), hs::util::sample_stddev(data), 1e-8);
}

}  // namespace
