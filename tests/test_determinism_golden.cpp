// Golden-value determinism tests.
//
// The event engine promises bit-identical results for identical seeds —
// reproducible replications are what make the paper's figures (and every
// BENCH_sim.json data point) comparable across machines and commits. The
// values below were captured from the std::function-based engine the
// typed-event core replaced, so they also pin the refactor itself:
// any change to event ordering (heap tie-breaking, sequence-number
// assignment, reschedule semantics, dispatcher arithmetic) shifts at
// least one of these runs and fails loudly here.
//
// Comparisons are exact (==). If a deliberate behavior change moves the
// numbers, re-derive them with a one-off print of the same configs and
// explain the change in the commit message — never loosen the equality.
#include <gtest/gtest.h>

#include <cstdint>

#include "cluster/experiment.h"
#include "cluster/sim.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace {

using hs::cluster::SimulationConfig;
using hs::cluster::SimulationResult;
using hs::core::PolicyKind;

SimulationResult run_golden(PolicyKind kind,
                            hs::obs::Observer* observer = nullptr) {
  SimulationConfig config;
  config.speeds = {1.0, 1.0, 2.0, 3.0, 5.0};
  config.rho = 0.7;
  config.sim_time = 20000.0;
  config.warmup_frac = 0.25;
  config.seed = 20260806;
  config.observer = observer;
  auto dispatcher =
      hs::core::make_policy_dispatcher(kind, config.speeds, config.rho);
  return hs::cluster::run_simulation(config, *dispatcher);
}

TEST(DeterminismGolden, WeightedRoundRobin) {
  const SimulationResult r = run_golden(PolicyKind::kWRR);
  EXPECT_EQ(r.mean_response_time, 85.509914602972557);
  EXPECT_EQ(r.mean_response_ratio, 1.3537961572034822);
  EXPECT_EQ(r.fairness, 0.77287178210531293);
  EXPECT_EQ(r.completed_jobs, 1690u);
  EXPECT_EQ(r.dispatched_jobs, 1690u);
  EXPECT_EQ(r.events_fired, 4832u);
}

TEST(DeterminismGolden, OptimizedRoundRobin) {
  const SimulationResult r = run_golden(PolicyKind::kORR);
  EXPECT_EQ(r.mean_response_time, 85.683197268436061);
  EXPECT_EQ(r.mean_response_ratio, 1.340141638628696);
  EXPECT_EQ(r.fairness, 0.83256692416027245);
  EXPECT_EQ(r.completed_jobs, 1690u);
  EXPECT_EQ(r.dispatched_jobs, 1690u);
  EXPECT_EQ(r.events_fired, 4832u);
}

// Least-Load exercises the delayed departure-report feedback path, whose
// events interleave with departures at close times — the most ordering-
// sensitive configuration the engine runs.
TEST(DeterminismGolden, LeastLoadFeedback) {
  const SimulationResult r = run_golden(PolicyKind::kLeastLoad);
  EXPECT_EQ(r.mean_response_time, 50.672730717063899);
  EXPECT_EQ(r.mean_response_ratio, 0.837698283206044);
  EXPECT_EQ(r.fairness, 0.44106033425327795);
  EXPECT_EQ(r.completed_jobs, 1690u);
  EXPECT_EQ(r.dispatched_jobs, 1690u);
  EXPECT_EQ(r.events_fired, 7248u);
}

// Tracing must be a pure read of the simulation: the WRR golden run with
// a trace sink attached reproduces every golden value bit-for-bit,
// including the fired-event count (recording is not an event).
TEST(DeterminismGolden, WeightedRoundRobinWithTracingOn) {
  hs::obs::TraceSink sink;
  hs::obs::Observer observer;
  observer.trace = &sink;
  const SimulationResult r = run_golden(PolicyKind::kWRR, &observer);
  EXPECT_EQ(r.mean_response_time, 85.509914602972557);
  EXPECT_EQ(r.mean_response_ratio, 1.3537961572034822);
  EXPECT_EQ(r.fairness, 0.77287178210531293);
  EXPECT_EQ(r.completed_jobs, 1690u);
  EXPECT_EQ(r.dispatched_jobs, 1690u);
  EXPECT_EQ(r.events_fired, 4832u);
  EXPECT_GT(sink.size(), 0u);
}

// Metric sampling reads simulation state but never mutates it: the
// scalar results stay bit-identical and the fired-event count grows by
// exactly floor(sim_time / interval) sampler ticks — nothing else.
TEST(DeterminismGolden, WeightedRoundRobinWithSamplingOn) {
  hs::obs::MetricsRegistry registry;
  hs::obs::Observer observer;
  observer.metrics = &registry;
  observer.sample_interval = 500.0;
  const SimulationResult r = run_golden(PolicyKind::kWRR, &observer);
  EXPECT_EQ(r.mean_response_time, 85.509914602972557);
  EXPECT_EQ(r.mean_response_ratio, 1.3537961572034822);
  EXPECT_EQ(r.fairness, 0.77287178210531293);
  EXPECT_EQ(r.completed_jobs, 1690u);
  EXPECT_EQ(r.dispatched_jobs, 1690u);
  EXPECT_EQ(r.events_fired, 4832u + 40u);  // floor(20000 / 500) ticks
  EXPECT_EQ(registry.sample_count(), 41u);  // t = 0 plus one per tick
}

// The random-dispatch policies, pinned per sampler. The CDF binary
// search is the default and must never move; the O(1) alias table maps
// the same uniform draw differently, so its sequence is distinct but
// equally reproducible — each path carries its own golden values.
TEST(DeterminismGolden, OptimizedRandomCdfSampler) {
  SimulationConfig config;
  config.speeds = {1.0, 1.0, 2.0, 3.0, 5.0};
  config.rho = 0.7;
  config.sim_time = 20000.0;
  config.warmup_frac = 0.25;
  config.seed = 20260806;
  auto dispatcher = hs::core::make_policy_dispatcher(
      PolicyKind::kORAN, config.speeds, config.rho,
      /*rho_estimate_factor=*/1.0, hs::dispatch::SamplerKind::kCdf);
  const SimulationResult r = hs::cluster::run_simulation(config, *dispatcher);
  EXPECT_EQ(r.mean_response_time, 88.630584216785778);
  EXPECT_EQ(r.mean_response_ratio, 1.4964506962533122);
  EXPECT_EQ(r.fairness, 1.0847578980358354);
  EXPECT_EQ(r.completed_jobs, 1690u);
  EXPECT_EQ(r.events_fired, 4832u);
}

TEST(DeterminismGolden, OptimizedRandomAliasSampler) {
  SimulationConfig config;
  config.speeds = {1.0, 1.0, 2.0, 3.0, 5.0};
  config.rho = 0.7;
  config.sim_time = 20000.0;
  config.warmup_frac = 0.25;
  config.seed = 20260806;
  auto dispatcher = hs::core::make_policy_dispatcher(
      PolicyKind::kORAN, config.speeds, config.rho,
      /*rho_estimate_factor=*/1.0, hs::dispatch::SamplerKind::kAlias);
  EXPECT_EQ(dispatcher->name(), "random-alias");
  const SimulationResult r = hs::cluster::run_simulation(config, *dispatcher);
  EXPECT_EQ(r.mean_response_time, 124.17750904879489);
  EXPECT_EQ(r.mean_response_ratio, 1.7719084185394363);
  EXPECT_EQ(r.fairness, 1.9057238088952211);
  EXPECT_EQ(r.completed_jobs, 1690u);
  EXPECT_EQ(r.events_fired, 4832u);
}

// The exact configuration of bench/micro_sim.cpp's end-to-end cluster
// benchmark (first seed), so BENCH_sim.json throughput numbers are pinned
// to a workload whose results are themselves regression-checked.
TEST(DeterminismGolden, BenchmarkClusterConfig) {
  SimulationConfig config;
  config.speeds = {1.0, 1.0, 1.0, 1.0, 1.0, 1.5, 1.5, 1.5, 1.5,
                   2.0, 2.0, 2.0, 5.0, 10.0, 12.0};
  config.rho = 0.7;
  config.sim_time = 50000.0;
  config.warmup_frac = 0.25;
  config.seed = 1;
  auto dispatcher = hs::core::make_policy_dispatcher(
      PolicyKind::kORR, config.speeds, config.rho);
  const SimulationResult r = hs::cluster::run_simulation(config, *dispatcher);
  EXPECT_EQ(r.mean_response_time, 74.314906157429647);
  EXPECT_EQ(r.mean_response_ratio, 0.91987657610238915);
  EXPECT_EQ(r.fairness, 0.73569801003109303);
  EXPECT_EQ(r.completed_jobs, 15116u);
  EXPECT_EQ(r.events_fired, 39780u);
}

// Replicated experiment: covers seed derivation across replications and
// the buffer reuse in run_experiment (reused buffers must not leak state
// between replications).
TEST(DeterminismGolden, ReplicatedExperiment) {
  hs::cluster::ExperimentConfig config;
  config.simulation.speeds = {1.0, 2.0, 4.0};
  config.simulation.rho = 0.6;
  config.simulation.sim_time = 10000.0;
  config.simulation.seed = 1;
  config.replications = 4;
  config.base_seed = 777;
  auto factory = hs::core::policy_dispatcher_factory(
      PolicyKind::kORR, config.simulation.speeds, config.simulation.rho);
  const auto r = hs::cluster::run_experiment(config, factory);
  EXPECT_EQ(r.response_time.mean, 83.257826762809827);
  EXPECT_EQ(r.response_ratio.mean, 0.97668628092735499);
  EXPECT_EQ(r.fairness.mean, 0.63032716924219423);
  EXPECT_EQ(r.total_jobs, 1693u);
  ASSERT_EQ(r.replications.size(), 4u);
  const double rep_rt[] = {104.5377890315672, 53.503357874360852,
                           107.057676342254, 67.932483803057295};
  const uint64_t rep_jobs[] = {509, 392, 407, 385};
  const uint64_t rep_events[] = {1306, 1024, 1114, 1000};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.replications[i].mean_response_time, rep_rt[i]) << "rep " << i;
    EXPECT_EQ(r.replications[i].completed_jobs, rep_jobs[i]) << "rep " << i;
    EXPECT_EQ(r.replications[i].events_fired, rep_events[i]) << "rep " << i;
  }
}

}  // namespace
