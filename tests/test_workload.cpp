// Tests for arrival processes, job size models, specs and traces.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "stats/running_stats.h"
#include "util/check.h"
#include "workload/arrival.h"
#include "workload/job_size.h"
#include "workload/spec.h"
#include "workload/trace.h"

namespace {

using namespace hs::workload;

struct ArrivalStats {
  double mean;
  double cv;
};

ArrivalStats measure(ArrivalProcess& process, int n, uint64_t seed) {
  hs::rng::Xoshiro256 gen(seed);
  hs::stats::RunningStats stats;
  for (int i = 0; i < n; ++i) {
    stats.add(process.next_interarrival(gen));
  }
  return {stats.mean(), stats.stddev() / stats.mean()};
}

TEST(PoissonArrivals, MeanAndCv) {
  PoissonArrivals p(0.5);
  EXPECT_DOUBLE_EQ(p.mean_interarrival(), 2.0);
  EXPECT_DOUBLE_EQ(p.rate(), 0.5);
  const auto m = measure(p, 400000, 1);
  EXPECT_NEAR(m.mean, 2.0, 0.02);
  EXPECT_NEAR(m.cv, 1.0, 0.02);
}

TEST(HyperExpArrivals, PaperModelCv3) {
  // §4.1: two-stage hyperexponential with CV = 3.0.
  HyperExpArrivals h(2.2, 3.0);
  EXPECT_NEAR(h.mean_interarrival(), 2.2, 1e-9);
  EXPECT_NEAR(h.cv(), 3.0, 1e-6);
  const auto m = measure(h, 2000000, 2);
  EXPECT_NEAR(m.mean, 2.2, 0.05);
  EXPECT_NEAR(m.cv, 3.0, 0.1);
}

TEST(DeterministicArrivals, FixedInterval) {
  DeterministicArrivals d(1.5);
  const auto m = measure(d, 100, 3);
  EXPECT_DOUBLE_EQ(m.mean, 1.5);
  EXPECT_DOUBLE_EQ(m.cv, 0.0);
  EXPECT_THROW((void)(DeterministicArrivals(0.0)), hs::util::CheckError);
}

TEST(Mmpp2Arrivals, LongRunRateMatchesStationaryMix) {
  // Calm state rate 1 (hold 10 s), burst state rate 10 (hold 2 s):
  // stationary rate = (10·1 + 2·10)/12 = 2.5.
  Mmpp2Arrivals m(1.0, 10.0, 10.0, 2.0);
  EXPECT_NEAR(m.mean_interarrival(), 1.0 / 2.5, 1e-12);
  const auto stats = measure(m, 1000000, 4);
  EXPECT_NEAR(stats.mean, 1.0 / 2.5, 0.02);
  // Modulated process must be burstier than Poisson.
  EXPECT_GT(stats.cv, 1.05);
}

TEST(Mmpp2Arrivals, ResetClearsModulationState) {
  Mmpp2Arrivals m(1.0, 50.0, 5.0, 5.0);
  hs::rng::Xoshiro256 g1(9), g2(9);
  std::vector<double> first, second;
  for (int i = 0; i < 100; ++i) {
    first.push_back(m.next_interarrival(g1));
  }
  m.reset();
  for (int i = 0; i < 100; ++i) {
    second.push_back(m.next_interarrival(g2));
  }
  EXPECT_EQ(first, second);
}

TEST(JobSizeModel, PaperDefaultMean) {
  const JobSizeModel model = JobSizeModel::paper_default();
  EXPECT_NEAR(model.mean(), 76.8, 0.05);
  EXPECT_NEAR(paper_mean_job_size(), 76.8, 0.05);
}

TEST(JobSizeModel, FactoriesProduceExpectedDistributions) {
  EXPECT_NEAR(JobSizeModel::exponential(10.0).mean(), 10.0, 1e-12);
  EXPECT_NEAR(JobSizeModel::exponential(10.0).cv(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(JobSizeModel::deterministic(5.0).mean(), 5.0);
  EXPECT_GT(JobSizeModel::bounded_pareto(1.1).cv(), 1.0);
}

TEST(WorkloadSpec, PaperDefaults) {
  const WorkloadSpec spec = WorkloadSpec::paper_default();
  EXPECT_EQ(spec.arrival_kind, ArrivalKind::kHyperExp);
  EXPECT_DOUBLE_EQ(spec.arrival_cv, 3.0);
  EXPECT_EQ(spec.size_kind, SizeKind::kBoundedPareto);
  EXPECT_NEAR(spec.mean_job_size(), 76.8, 0.05);
}

TEST(WorkloadSpec, ArrivalRateForUtilization) {
  WorkloadSpec spec;
  spec.size_kind = SizeKind::kExponential;
  spec.fixed_or_mean_size = 2.0;
  // ρ=0.5 with Σs=4: λ = 0.5·4/2 = 1.0.
  EXPECT_NEAR(spec.arrival_rate_for(0.5, 4.0), 1.0, 1e-12);
  // ρ >= 1 is a legal (overloaded) operating point: λ = 1.5·4/2 = 3.0.
  EXPECT_NEAR(spec.arrival_rate_for(1.5, 4.0), 3.0, 1e-12);
  EXPECT_THROW((void)(spec.arrival_rate_for(0.0, 4.0)), hs::util::CheckError);
  EXPECT_THROW((void)(spec.arrival_rate_for(-0.5, 4.0)), hs::util::CheckError);
}

TEST(WorkloadSpec, MakeArrivalsMatchesKind) {
  WorkloadSpec spec;
  spec.arrival_kind = ArrivalKind::kPoisson;
  auto arrivals = spec.make_arrivals(2.0);
  EXPECT_NEAR(arrivals->rate(), 2.0, 1e-12);
  EXPECT_NEAR(arrivals->cv(), 1.0, 1e-12);

  spec.arrival_kind = ArrivalKind::kHyperExp;
  spec.arrival_cv = 2.5;
  auto h2 = spec.make_arrivals(0.5);
  EXPECT_NEAR(h2->mean_interarrival(), 2.0, 1e-9);
  EXPECT_NEAR(h2->cv(), 2.5, 1e-6);
}

TEST(WorkloadSpec, DescribeMentionsComponents) {
  const std::string text = WorkloadSpec::paper_default().describe();
  EXPECT_NE(text.find("HyperExp"), std::string::npos);
  EXPECT_NE(text.find("BoundedPareto"), std::string::npos);
}

// ---------------------------------------------------------------- Trace

TEST(JobTrace, GenerateProducesOrderedJobs) {
  const WorkloadSpec spec = WorkloadSpec::paper_default();
  const JobTrace trace = JobTrace::generate(spec, 0.5, 10000.0, 42);
  EXPECT_GT(trace.size(), 4000u);
  EXPECT_LT(trace.size(), 6500u);
  double last = 0.0;
  for (const auto& job : trace.jobs()) {
    EXPECT_GE(job.arrival_time, last);
    EXPECT_GE(job.size, 10.0);
    EXPECT_LE(job.size, 21600.0);
    last = job.arrival_time;
  }
  EXPECT_LE(trace.horizon(), 10000.0);
}

TEST(JobTrace, GenerateIsDeterministicInSeed) {
  const WorkloadSpec spec = WorkloadSpec::paper_default();
  const JobTrace a = JobTrace::generate(spec, 0.5, 1000.0, 7);
  const JobTrace b = JobTrace::generate(spec, 0.5, 1000.0, 7);
  const JobTrace c = JobTrace::generate(spec, 0.5, 1000.0, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].arrival_time, b.jobs()[i].arrival_time);
    EXPECT_DOUBLE_EQ(a.jobs()[i].size, b.jobs()[i].size);
  }
  EXPECT_NE(a.size(), c.size());
}

TEST(JobTrace, MeasuredStatsMatchSpec) {
  WorkloadSpec spec = WorkloadSpec::paper_default();
  const double lambda = 1.0;
  const JobTrace trace = JobTrace::generate(spec, lambda, 300000.0, 11);
  EXPECT_NEAR(trace.mean_interarrival(), 1.0, 0.05);
  EXPECT_NEAR(trace.interarrival_cv(), 3.0, 0.25);
  EXPECT_NEAR(trace.mean_size(), 76.8, 10.0);
}

TEST(JobTrace, CsvRoundTrip) {
  const WorkloadSpec spec = WorkloadSpec::paper_default();
  const JobTrace trace = JobTrace::generate(spec, 0.5, 500.0, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "hs_trace_test.csv").string();
  trace.save_csv(path);
  const JobTrace loaded = JobTrace::load_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.jobs()[i].arrival_time,
                     trace.jobs()[i].arrival_time);
    EXPECT_DOUBLE_EQ(loaded.jobs()[i].size, trace.jobs()[i].size);
  }
}

TEST(JobTrace, RejectsDisorderedInput) {
  std::vector<hs::queueing::Job> jobs = {{0, 5.0, 1.0}, {1, 4.0, 1.0}};
  EXPECT_THROW((void)JobTrace(std::move(jobs)), hs::util::CheckError);
}

TEST(JobTrace, RejectsNonPositiveSizes) {
  std::vector<hs::queueing::Job> jobs = {{0, 1.0, 0.0}};
  EXPECT_THROW((void)JobTrace(std::move(jobs)), hs::util::CheckError);
}

}  // namespace
