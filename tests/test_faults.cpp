// Unit tests for the fault-injection layer: config validation, timeline
// expansion, server eviction, and failure-aware dispatching.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/faults.h"
#include "core/adaptive.h"
#include "core/policy.h"
#include "dispatch/fault_aware.h"
#include "dispatch/least_load.h"
#include "dispatch/smooth_rr.h"
#include "queueing/fcfs_server.h"
#include "queueing/ps_server.h"
#include "queueing/rr_server.h"
#include "rng/rng.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace {

using namespace hs::cluster;
using hs::core::AdaptiveOrrDispatcher;
using hs::core::PolicyKind;
using hs::dispatch::FaultAwareDispatcher;
using hs::dispatch::LeastLoadDispatcher;
using hs::util::CheckError;

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  return "";
}

// ---- RetryPolicy / FaultConfig validation ----

TEST(RetryPolicy, DefaultsValid) {
  EXPECT_NO_THROW(RetryPolicy{}.validate());
}

// Per-field rejection coverage (NaN/Inf/negative/zero sweeps) lives in
// test_config_validation.cpp.

TEST(FaultConfig, DisabledByDefault) {
  FaultConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_NO_THROW(config.validate(3, 100.0));
}

TEST(FaultConfig, EnabledByOutageOrProcess) {
  FaultConfig config;
  config.outages.push_back({10.0, 5.0, 0});
  EXPECT_TRUE(config.enabled());

  FaultConfig stochastic;
  stochastic.processes.assign(2, {0.0, 0.0});
  EXPECT_FALSE(stochastic.enabled());  // mtbf 0 disables the process
  stochastic.processes[1] = {100.0, 10.0};
  EXPECT_TRUE(stochastic.enabled());
}

TEST(FaultConfig, ValidationNamesBadEntry) {
  FaultConfig config;
  config.outages.push_back({10.0, 5.0, 0});
  config.outages.push_back({20.0, 5.0, 7});  // machine out of range
  const std::string msg =
      error_message([&] { config.validate(3, 100.0); });
  EXPECT_NE(msg.find("outages[1]"), std::string::npos) << msg;

  FaultConfig late;
  late.outages.push_back({500.0, 5.0, 0});  // start beyond sim_time
  EXPECT_THROW(late.validate(3, 100.0), CheckError);

  FaultConfig zero;
  zero.outages.push_back({10.0, 0.0, 0});  // empty outage
  EXPECT_THROW(zero.validate(3, 100.0), CheckError);

  FaultConfig sized;
  sized.processes.assign(2, {100.0, 10.0});  // 2 entries, 3 machines
  EXPECT_THROW(sized.validate(3, 100.0), CheckError);

  FaultConfig no_repair;
  no_repair.processes.assign(1, {100.0, 0.0});  // crash but never recover
  const std::string repair_msg =
      error_message([&] { no_repair.validate(1, 100.0); });
  EXPECT_NE(repair_msg.find("processes[0]"), std::string::npos) << repair_msg;
}

// ---- Timeline expansion ----

TEST(FaultTimeline, ScriptedOutageExpandsToEdgePair) {
  FaultConfig config;
  config.outages.push_back({10.0, 5.0, 1});
  const auto timeline = build_fault_timeline(config, 3, 100.0, 42);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0].time, 10.0);
  EXPECT_EQ(timeline[0].machine, 1u);
  EXPECT_FALSE(timeline[0].up);
  EXPECT_DOUBLE_EQ(timeline[1].time, 15.0);
  EXPECT_TRUE(timeline[1].up);
}

TEST(FaultTimeline, RecoveryBeyondHorizonDropped) {
  FaultConfig config;
  config.outages.push_back({90.0, 50.0, 0});  // recovery at 140 > horizon
  const auto timeline = build_fault_timeline(config, 1, 100.0, 42);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_FALSE(timeline[0].up);
}

TEST(FaultTimeline, OverlappingOutagesMerge) {
  FaultConfig config;
  config.outages.push_back({10.0, 10.0, 0});  // [10, 20)
  config.outages.push_back({15.0, 10.0, 0});  // [15, 25) — overlaps
  config.outages.push_back({25.0, 5.0, 0});   // [25, 30) — adjacent
  const auto timeline = build_fault_timeline(config, 1, 100.0, 42);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0].time, 10.0);
  EXPECT_FALSE(timeline[0].up);
  EXPECT_DOUBLE_EQ(timeline[1].time, 30.0);
  EXPECT_TRUE(timeline[1].up);
}

TEST(FaultTimeline, StochasticDeterministicInSeed) {
  FaultConfig config;
  config.processes.assign(4, {200.0, 20.0});
  const auto a = build_fault_timeline(config, 4, 50000.0, 7);
  const auto b = build_fault_timeline(config, 4, 50000.0, 7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_EQ(a[i].up, b[i].up);
  }
  const auto c = build_fault_timeline(config, 4, 50000.0, 8);
  bool any_difference = c.size() != a.size();
  for (size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a[i].time != c[i].time;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultTimeline, PerMachineEventsAlternateWithinHorizon) {
  FaultConfig config;
  config.processes.assign(3, {100.0, 30.0});
  config.outages.push_back({50.0, 25.0, 1});
  const double horizon = 10000.0;
  const auto timeline = build_fault_timeline(config, 3, horizon, 11);
  ASSERT_GT(timeline.size(), 0u);
  std::vector<bool> down(3, false);
  double last_time = 0.0;
  for (const FaultEvent& event : timeline) {
    EXPECT_GE(event.time, last_time);  // sorted
    last_time = event.time;
    EXPECT_LE(event.time, horizon);
    ASSERT_LT(event.machine, 3u);
    // Strict alternation: crash only while up, recovery only while down.
    EXPECT_EQ(event.up, down[event.machine]);
    down[event.machine] = !event.up;
  }
}

TEST(FaultTimeline, DowntimeFromTimeline) {
  std::vector<FaultEvent> timeline = {
      {10.0, 0, false}, {15.0, 0, true},   // 5 s down
      {20.0, 1, false},                    // down through horizon: 80 s
      {30.0, 0, false}, {40.0, 0, true},   // 10 s down
  };
  const auto downtime = downtime_from_timeline(timeline, 3, 100.0);
  ASSERT_EQ(downtime.size(), 3u);
  EXPECT_DOUBLE_EQ(downtime[0], 15.0);
  EXPECT_DOUBLE_EQ(downtime[1], 80.0);
  EXPECT_DOUBLE_EQ(downtime[2], 0.0);
}

// ---- Server eviction ----

hs::queueing::Job make_job(uint64_t id, double size) {
  hs::queueing::Job job;
  job.id = id;
  job.arrival_time = 0.0;
  job.size = size;
  return job;
}

TEST(Eviction, PsServerDrainsAllResidentJobs) {
  hs::sim::Simulator simulator;
  hs::queueing::PsServer server(simulator, 1.0, 0);
  server.arrive(make_job(1, 5.0));
  server.arrive(make_job(2, 3.0));
  const auto lost = server.evict_all();
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(server.queue_length(), 0u);
  // No departure event survives the eviction.
  simulator.run_all();
  EXPECT_EQ(simulator.events_fired(), 0u);
}

TEST(Eviction, FcfsServerDrainsServiceAndQueue) {
  hs::sim::Simulator simulator;
  hs::queueing::FcfsServer server(simulator, 1.0, 0);
  server.arrive(make_job(1, 5.0));
  server.arrive(make_job(2, 3.0));
  server.arrive(make_job(3, 1.0));
  const auto lost = server.evict_all();
  ASSERT_EQ(lost.size(), 3u);
  EXPECT_EQ(lost[0].id, 1u);  // in-service job first
  EXPECT_EQ(server.queue_length(), 0u);
  simulator.run_all();
  EXPECT_EQ(simulator.events_fired(), 0u);
}

TEST(Eviction, RrServerDrainsReadyRing) {
  hs::sim::Simulator simulator;
  hs::queueing::RrServer server(simulator, 1.0, 0, 0.1);
  server.arrive(make_job(1, 5.0));
  server.arrive(make_job(2, 3.0));
  const auto lost = server.evict_all();
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(server.queue_length(), 0u);
  simulator.run_all();
  EXPECT_EQ(simulator.events_fired(), 0u);
}

// ---- FaultAwareDispatcher ----

TEST(FaultAware, RebuildModeBlacklistsAndRestores) {
  // ORR over three machines; crash machine 2 (the fastest).
  const std::vector<double> speeds = {1.0, 1.0, 4.0};
  auto dispatcher =
      hs::core::make_fault_aware_dispatcher(PolicyKind::kORR, speeds, 0.6);
  auto* aware = dynamic_cast<FaultAwareDispatcher*>(dispatcher.get());
  ASSERT_NE(aware, nullptr);
  EXPECT_TRUE(aware->uses_fault_feedback());
  EXPECT_EQ(aware->machine_count(), 3u);

  hs::rng::Xoshiro256 gen(3);
  aware->on_machine_state_report(2, /*up=*/false);
  EXPECT_EQ(aware->down_count(), 1u);
  EXPECT_EQ(aware->rebuilds(), 1u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(aware->pick(gen), 2u);
  }

  // Duplicate report is a no-op.
  aware->on_machine_state_report(2, /*up=*/false);
  EXPECT_EQ(aware->rebuilds(), 1u);

  aware->on_machine_state_report(2, /*up=*/true);
  EXPECT_EQ(aware->down_count(), 0u);
  EXPECT_EQ(aware->rebuilds(), 2u);
  bool fast_used = false;
  for (int i = 0; i < 200 && !fast_used; ++i) {
    fast_used = aware->pick(gen) == 2u;
  }
  EXPECT_TRUE(fast_used);
}

TEST(FaultAware, AllDownKeepsRouting) {
  const std::vector<double> speeds = {1.0, 2.0};
  auto dispatcher =
      hs::core::make_fault_aware_dispatcher(PolicyKind::kWRAN, speeds, 0.5);
  auto* aware = dynamic_cast<FaultAwareDispatcher*>(dispatcher.get());
  ASSERT_NE(aware, nullptr);
  aware->on_machine_state_report(0, false);
  const uint64_t rebuilds_after_first = aware->rebuilds();
  aware->on_machine_state_report(1, false);
  // No survivors: the decorator keeps the previous routing instead of
  // rebuilding over an empty set; picks stay in range (the fault layer
  // loses and retries whatever lands on a dead machine).
  EXPECT_EQ(aware->rebuilds(), rebuilds_after_first);
  hs::rng::Xoshiro256 gen(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(aware->pick(gen), 2u);
  }
}

TEST(FaultAware, ResetRestoresFullAvailability) {
  const std::vector<double> speeds = {1.0, 1.0};
  auto dispatcher =
      hs::core::make_fault_aware_dispatcher(PolicyKind::kORR, speeds, 0.5);
  auto* aware = dynamic_cast<FaultAwareDispatcher*>(dispatcher.get());
  ASSERT_NE(aware, nullptr);
  aware->on_machine_state_report(0, false);
  EXPECT_EQ(aware->down_count(), 1u);
  aware->reset();
  EXPECT_EQ(aware->down_count(), 0u);
  hs::rng::Xoshiro256 gen(5);
  bool slow_used = false;
  for (int i = 0; i < 50 && !slow_used; ++i) {
    slow_used = aware->pick(gen) == 0u;
  }
  EXPECT_TRUE(slow_used);
}

TEST(FaultAware, NativeMaskModeForLeastLoad) {
  const std::vector<double> speeds = {1.0, 1.0, 1.0};
  auto dispatcher = hs::core::make_fault_aware_dispatcher(
      PolicyKind::kLeastLoad, speeds, 0.5);
  auto* aware = dynamic_cast<FaultAwareDispatcher*>(dispatcher.get());
  ASSERT_NE(aware, nullptr);
  EXPECT_TRUE(aware->uses_feedback());
  hs::rng::Xoshiro256 gen(6);
  aware->on_machine_state_report(1, false);
  EXPECT_EQ(aware->rebuilds(), 0u);  // masked natively, no rebuild
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(aware->pick(gen), 1u);
  }
  aware->on_machine_state_report(1, true);
  bool restored = false;
  for (int i = 0; i < 100 && !restored; ++i) {
    restored = aware->pick(gen) == 1u;
  }
  EXPECT_TRUE(restored);
}

TEST(FaultAware, NameReflectsInner) {
  auto dispatcher =
      hs::core::make_fault_aware_dispatcher(PolicyKind::kORR, {1.0, 2.0}, 0.5);
  EXPECT_EQ(dispatcher->name(), "fault-aware(round-robin)");
}

// ---- LeastLoad native mask ----

TEST(LeastLoadMask, CrashZeroesEstimatesAndBlacklists) {
  LeastLoadDispatcher d({1.0, 1.0});
  hs::rng::Xoshiro256 gen(7);
  (void)d.pick(gen);
  (void)d.pick(gen);
  EXPECT_EQ(d.estimated_queue(0), 1u);
  EXPECT_EQ(d.estimated_queue(1), 1u);
  EXPECT_TRUE(d.set_available_mask({true, false}));
  EXPECT_EQ(d.estimated_queue(1), 0u);  // resident jobs died with the crash
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(d.pick(gen), 0u);
  }
  // A departure report for a pre-crash job arrives late: ignored.
  EXPECT_NO_THROW(d.on_departure_report(1));
  EXPECT_EQ(d.estimated_queue(1), 0u);
  d.set_available_mask({true, true});
  EXPECT_EQ(d.pick(gen), 1u);  // recovered machine is empty → preferred
}

TEST(LeastLoadMask, AllDownFallsBackToAllMachines) {
  LeastLoadDispatcher d({1.0, 1.0});
  hs::rng::Xoshiro256 gen(8);
  EXPECT_TRUE(d.set_available_mask({false, false}));
  EXPECT_LT(d.pick(gen), 2u);  // still routes somewhere
}

// ---- AdaptiveORR native mask ----

TEST(AdaptiveMask, MaskedMachineGetsZeroAllocation) {
  AdaptiveOrrDispatcher d({1.0, 1.0, 4.0});
  const uint64_t arrivals_before = d.estimator().observed_arrivals();
  EXPECT_TRUE(d.set_available_mask({true, false, true}));
  EXPECT_EQ(d.estimator().observed_arrivals(), arrivals_before);
  const auto& fractions = d.allocation().fractions();
  ASSERT_EQ(fractions.size(), 3u);
  EXPECT_EQ(fractions[1], 0.0);
  EXPECT_GT(fractions[2], 0.0);
  // ρ̂ machinery stays sane: assumed load within the configured clamp.
  EXPECT_GE(d.assumed_rho(), 0.02);
  EXPECT_LE(d.assumed_rho(), 0.98);
  hs::rng::Xoshiro256 gen(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(d.pick(gen), 1u);
  }
  EXPECT_TRUE(d.set_available_mask({true, true, true}));
  EXPECT_GT(d.allocation().fractions()[1], 0.0);
}

TEST(AdaptiveMask, AllFalseTreatedAsAllTrue) {
  AdaptiveOrrDispatcher d({1.0, 2.0});
  EXPECT_TRUE(d.set_available_mask({false, false}));
  EXPECT_GT(d.allocation().fractions()[0], 0.0);
  EXPECT_GT(d.allocation().fractions()[1], 0.0);
}

// ---- Masked allocation ----

TEST(MaskedAllocation, AllTrueMatchesUnmasked) {
  const std::vector<double> speeds = {1.0, 2.0, 5.0};
  const auto plain =
      hs::core::policy_allocation(PolicyKind::kORR, speeds, 0.7);
  const auto masked = hs::core::policy_allocation_masked(
      PolicyKind::kORR, speeds, 0.7, {true, true, true});
  ASSERT_EQ(masked.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(masked[i], plain[i]);
  }
}

TEST(MaskedAllocation, SurvivorsAbsorbFullLoad) {
  const std::vector<double> speeds = {1.0, 1.0, 2.0};
  const auto masked = hs::core::policy_allocation_masked(
      PolicyKind::kORR, speeds, 0.5, {true, true, false});
  EXPECT_DOUBLE_EQ(masked[2], 0.0);
  EXPECT_GT(masked[0] + masked[1], 0.999999);
  // Survivor utilization reflects the degraded effective load: with the
  // speed-2 machine gone, ρ_eff = 0.5·4/2 = 1 clamped below 1, so the
  // allocation must remain valid (non-negative, sums to 1).
  EXPECT_GE(masked[0], 0.0);
  EXPECT_GE(masked[1], 0.0);
}

TEST(MaskedAllocation, HighLoadClampDoesNotThrow)
{
  // Killing most of the capacity pushes effective ρ far beyond 1; the
  // clamp keeps Algorithm 1 well-defined.
  const std::vector<double> speeds = {1.0, 10.0, 10.0};
  EXPECT_NO_THROW({
    const auto masked = hs::core::policy_allocation_masked(
        PolicyKind::kORR, speeds, 0.9, {true, false, false});
    EXPECT_DOUBLE_EQ(masked[0], 1.0);
  });
}

}  // namespace
