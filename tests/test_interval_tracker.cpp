// Tests for the Figure 2 workload allocation deviation tracker.
#include <gtest/gtest.h>

#include <vector>

#include "stats/interval_tracker.h"
#include "util/check.h"

namespace {

using hs::stats::IntervalDeviationTracker;

TEST(IntervalTracker, PerfectMatchZeroDeviation) {
  IntervalDeviationTracker tracker({0.5, 0.5}, 10.0);
  tracker.record(1.0, 0);
  tracker.record(2.0, 1);
  tracker.record(3.0, 0);
  tracker.record(4.0, 1);
  tracker.flush_until(10.0);
  ASSERT_EQ(tracker.deviations().size(), 1u);
  EXPECT_NEAR(tracker.deviations()[0], 0.0, 1e-15);
}

TEST(IntervalTracker, KnownDeviation) {
  IntervalDeviationTracker tracker({0.25, 0.75}, 10.0);
  // All four jobs to machine 0: actual = {1, 0}.
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    tracker.record(t, 0);
  }
  tracker.flush_until(10.0);
  ASSERT_EQ(tracker.deviations().size(), 1u);
  // (0.25-1)² + (0.75-0)² = 0.5625 + 0.5625.
  EXPECT_NEAR(tracker.deviations()[0], 1.125, 1e-12);
}

TEST(IntervalTracker, EmptyIntervalContributesFullMiss) {
  IntervalDeviationTracker tracker({0.3, 0.7}, 5.0);
  tracker.flush_until(5.0);
  ASSERT_EQ(tracker.deviations().size(), 1u);
  // Σ αᵢ² = 0.09 + 0.49.
  EXPECT_NEAR(tracker.deviations()[0], 0.58, 1e-12);
}

TEST(IntervalTracker, MultipleIntervalsInOrder) {
  IntervalDeviationTracker tracker({0.5, 0.5}, 10.0);
  tracker.record(1.0, 0);   // interval 0: all to machine 0
  tracker.record(11.0, 1);  // interval 1: all to machine 1
  tracker.record(12.0, 1);
  tracker.flush_until(20.0);
  ASSERT_EQ(tracker.deviations().size(), 2u);
  EXPECT_NEAR(tracker.deviations()[0], 0.5, 1e-12);  // {1,0} vs {.5,.5}
  EXPECT_NEAR(tracker.deviations()[1], 0.5, 1e-12);  // {0,1} vs {.5,.5}
}

TEST(IntervalTracker, RecordAtIntervalBoundaryGoesToNext) {
  IntervalDeviationTracker tracker({1.0, 0.0}, 10.0);
  tracker.record(10.0, 0);  // exactly at boundary: belongs to interval 1
  tracker.flush_until(20.0);
  ASSERT_EQ(tracker.deviations().size(), 2u);
  EXPECT_NEAR(tracker.deviations()[0], 1.0, 1e-12);  // interval 0 empty
  EXPECT_NEAR(tracker.deviations()[1], 0.0, 1e-12);
}

TEST(IntervalTracker, OutOfOrderRecordThrows) {
  IntervalDeviationTracker tracker({1.0}, 10.0);
  tracker.record(5.0, 0);
  EXPECT_THROW(tracker.record(4.0, 0), hs::util::CheckError);
}

TEST(IntervalTracker, BadMachineThrows) {
  IntervalDeviationTracker tracker({1.0}, 10.0);
  EXPECT_THROW(tracker.record(1.0, 1), hs::util::CheckError);
}

TEST(IntervalTracker, FractionsMustSumToOne) {
  EXPECT_THROW(IntervalDeviationTracker({0.5, 0.6}, 10.0),
               hs::util::CheckError);
}

TEST(IntervalTracker, SkippedIntervalsAllReported) {
  IntervalDeviationTracker tracker({1.0}, 1.0);
  tracker.record(0.5, 0);
  tracker.record(4.5, 0);  // skips intervals 1..3
  tracker.flush_until(5.0);
  ASSERT_EQ(tracker.deviations().size(), 5u);
  EXPECT_NEAR(tracker.deviations()[0], 0.0, 1e-12);
  EXPECT_NEAR(tracker.deviations()[1], 1.0, 1e-12);
  EXPECT_NEAR(tracker.deviations()[4], 0.0, 1e-12);
}

}  // namespace
