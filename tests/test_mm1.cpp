// Tests for the closed-form queueing formulas.
#include <gtest/gtest.h>

#include "queueing/mm1.h"
#include "util/check.h"

namespace {

using namespace hs::queueing::mm1;

TEST(Mm1, Utilization) {
  EXPECT_DOUBLE_EQ(utilization(0.7, 1.0), 0.7);
  EXPECT_DOUBLE_EQ(utilization(3.0, 10.0), 0.3);
  EXPECT_DOUBLE_EQ(utilization(0.0, 1.0), 0.0);
}

TEST(Mm1, PsMeanResponseTime) {
  // Eq. (1): T = 1/(μ−λ); at ρ=0.7, μ=1: T = 1/0.3.
  EXPECT_NEAR(ps_mean_response_time(0.7, 1.0), 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(ps_mean_response_time(0.0, 2.0), 0.5, 1e-12);
}

TEST(Mm1, PsMeanResponseRatio) {
  // Eq. (2): R = 1/(1−ρ).
  EXPECT_NEAR(ps_mean_response_ratio(0.7, 1.0), 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(ps_mean_response_ratio(0.5, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(ps_mean_response_ratio(4.5, 9.0), 2.0, 1e-12);
}

TEST(Mm1, MeanNumberInSystem) {
  EXPECT_NEAR(mean_number_in_system(0.5, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(mean_number_in_system(0.9, 1.0), 9.0, 1e-12);
}

TEST(Mm1, LittlesLawConsistency) {
  // L = λ·T must hold between the formulas.
  const double lambda = 0.65;
  const double mu = 1.3;
  EXPECT_NEAR(mean_number_in_system(lambda, mu),
              lambda * ps_mean_response_time(lambda, mu), 1e-12);
}

TEST(Mm1, FcfsWaiting) {
  // W = ρ/(μ−λ): λ=0.7, μ=1 => 0.7/0.3.
  EXPECT_NEAR(mm1_fcfs_mean_waiting(0.7, 1.0), 7.0 / 3.0, 1e-12);
}

TEST(Mm1, FcfsResponseEqualsWaitPlusService) {
  const double lambda = 0.4, mu = 1.0;
  EXPECT_NEAR(mm1_fcfs_mean_waiting(lambda, mu) + 1.0 / mu,
              ps_mean_response_time(lambda, mu), 1e-12);
}

TEST(Mg1, PollaczekKhinchineExponentialReducesToMm1) {
  const double lambda = 0.6, mu = 1.0;
  // Exponential service: E[S]=1, E[S²]=2.
  EXPECT_NEAR(mg1_fcfs_mean_waiting(lambda, 1.0 / mu, 2.0 / (mu * mu)),
              mm1_fcfs_mean_waiting(lambda, mu), 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesWaiting) {
  const double lambda = 0.6;
  // Deterministic service: E[S²] = E[S]² => half the M/M/1 waiting.
  EXPECT_NEAR(mg1_fcfs_mean_waiting(lambda, 1.0, 1.0),
              0.5 * mm1_fcfs_mean_waiting(lambda, 1.0), 1e-12);
}

TEST(Mm1, ConditionalPsResponse) {
  // Eq. (1) conditional form: E[T | size=t] = t/(1−ρ).
  EXPECT_NEAR(ps_conditional_response(10.0, 0.5), 20.0, 1e-12);
  EXPECT_NEAR(ps_conditional_response(1.0, 0.0), 1.0, 1e-12);
}

TEST(Mm1, InstabilityRejected) {
  EXPECT_THROW((void)(ps_mean_response_time(1.0, 1.0)), hs::util::CheckError);
  EXPECT_THROW((void)(ps_mean_response_ratio(2.0, 1.0)), hs::util::CheckError);
  EXPECT_THROW((void)(mm1_fcfs_mean_waiting(1.5, 1.0)), hs::util::CheckError);
  EXPECT_THROW((void)(mg1_fcfs_mean_waiting(1.0, 1.0, 1.0)), hs::util::CheckError);
}

TEST(Mm1, InvalidInputsRejected) {
  EXPECT_THROW((void)(utilization(0.5, 0.0)), hs::util::CheckError);
  EXPECT_THROW((void)(utilization(-0.5, 1.0)), hs::util::CheckError);
  EXPECT_THROW((void)(ps_conditional_response(0.0, 0.5)), hs::util::CheckError);
  EXPECT_THROW((void)(ps_conditional_response(1.0, 1.0)), hs::util::CheckError);
}

}  // namespace
