// Tests for the FCFS server, validated against M/M/1 and M/G/1
// (Pollaczek–Khinchine) closed forms.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "queueing/fcfs_server.h"
#include "queueing/mm1.h"
#include "rng/distributions.h"
#include "sim/simulator.h"
#include "stats/running_stats.h"
#include "util/check.h"

namespace {

using hs::queueing::Completion;
using hs::queueing::FcfsServer;
using hs::queueing::Job;
using hs::sim::Simulator;

struct Harness {
  Simulator sim;
  FcfsServer server;
  std::vector<Completion> completions;

  explicit Harness(double speed = 1.0) : server(sim, speed, 3) {
    server.set_completion_callback(
        [this](const Completion& c) { completions.push_back(c); });
  }

  void arrive_at(double t, uint64_t id, double size) {
    sim.schedule_at(t, [this, id, size, t] {
      server.arrive(Job{id, t, size});
    });
  }

  std::map<uint64_t, double> departures() {
    std::map<uint64_t, double> result;
    for (const auto& c : completions) {
      result[c.job.id] = c.departure_time;
    }
    return result;
  }
};

TEST(FcfsServer, JobsServedInArrivalOrder) {
  Harness h(1.0);
  h.arrive_at(0.0, 1, 2.0);
  h.arrive_at(0.5, 2, 1.0);
  h.arrive_at(0.6, 3, 1.0);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  EXPECT_DOUBLE_EQ(d[3], 4.0);
}

TEST(FcfsServer, NoSharingUnlikePs) {
  // Under FCFS the short job queued behind a long one waits fully.
  Harness h(1.0);
  h.arrive_at(0.0, 1, 10.0);
  h.arrive_at(1.0, 2, 0.5);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_DOUBLE_EQ(d[1], 10.0);
  EXPECT_DOUBLE_EQ(d[2], 10.5);
}

TEST(FcfsServer, SpeedScalesService) {
  Harness h(4.0);
  h.arrive_at(0.0, 1, 8.0);
  h.sim.run_all();
  EXPECT_DOUBLE_EQ(h.departures()[1], 2.0);
}

TEST(FcfsServer, IdleGapRestartsService) {
  Harness h(1.0);
  h.arrive_at(0.0, 1, 1.0);
  h.arrive_at(5.0, 2, 1.0);
  h.sim.run_all();
  auto d = h.departures();
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 6.0);
  EXPECT_NEAR(h.server.busy_time(), 2.0, 1e-9);
}

TEST(FcfsServer, QueueLengthIncludesInService) {
  Harness h(1.0);
  h.arrive_at(0.0, 1, 10.0);
  h.arrive_at(1.0, 2, 10.0);
  h.arrive_at(2.0, 3, 10.0);
  h.sim.run_until(3.0);
  EXPECT_EQ(h.server.queue_length(), 3u);
}

TEST(FcfsServer, MachineIndexPropagated) {
  Harness h(1.0);
  h.arrive_at(0.0, 1, 1.0);
  h.sim.run_all();
  EXPECT_EQ(h.completions[0].machine, 3);
}

TEST(FcfsServer, Mm1MeanResponseMatchesTheory) {
  Harness h(1.0);
  hs::rng::Xoshiro256 gen(1234);
  const double lambda = 0.7;
  const double mu = 1.0;
  hs::rng::Exponential interarrival(lambda);
  hs::rng::Exponential sizes(mu);

  hs::stats::RunningStats response;
  h.server.set_completion_callback([&](const Completion& comp) {
    response.add(comp.response_time());
  });

  double t = 0.0;
  for (int i = 0; i < 300000; ++i) {
    t += interarrival.sample(gen);
    const double size = sizes.sample(gen);
    h.sim.schedule_at(t, [&h, i, t, size] {
      h.server.arrive(Job{static_cast<uint64_t>(i), t, size});
    });
    h.sim.run_until(t);
  }
  h.sim.run_all();

  // M/M/1-FCFS mean response = 1/(μ−λ) (same as PS for exponential).
  const double expected = 1.0 / (mu - lambda);
  EXPECT_NEAR(response.mean(), expected, 0.05 * expected);
}

TEST(FcfsServer, Mg1WaitingMatchesPollaczekKhinchine) {
  Harness h(1.0);
  hs::rng::Xoshiro256 gen(5678);
  // Deterministic-ish service: uniform sizes on [0.5, 1.5].
  hs::rng::Uniform sizes(0.5, 1.5);
  const double mean_s = 1.0;
  const double second_moment = sizes.variance() + mean_s * mean_s;
  const double lambda = 0.6;
  hs::rng::Exponential interarrival(lambda);

  hs::stats::RunningStats waiting;
  h.server.set_completion_callback([&](const Completion& comp) {
    waiting.add(comp.response_time() - comp.job.size);  // speed 1
  });

  double t = 0.0;
  for (int i = 0; i < 300000; ++i) {
    t += interarrival.sample(gen);
    const double size = sizes.sample(gen);
    h.sim.schedule_at(t, [&h, i, t, size] {
      h.server.arrive(Job{static_cast<uint64_t>(i), t, size});
    });
    h.sim.run_until(t);
  }
  h.sim.run_all();

  const double expected =
      hs::queueing::mm1::mg1_fcfs_mean_waiting(lambda, mean_s, second_moment);
  EXPECT_NEAR(waiting.mean(), expected, 0.05 * expected);
}

}  // namespace
