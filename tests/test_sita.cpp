// Tests for the SITA-E size-interval dispatcher and the Bounded Pareto
// partial-expectation math behind its cutoffs.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/sim.h"
#include "dispatch/sita.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::dispatch::bounded_pareto_partial_mean;
using hs::dispatch::bounded_pareto_partial_mean_inverse;
using hs::dispatch::SitaDispatcher;
using hs::rng::BoundedPareto;

const BoundedPareto kPaperSizes(10.0, 21600.0, 1.0);

TEST(PartialMean, FullRangeEqualsMean) {
  EXPECT_NEAR(bounded_pareto_partial_mean(kPaperSizes, 10.0, 21600.0),
              kPaperSizes.mean(), 1e-9 * kPaperSizes.mean());
  const BoundedPareto other(1.0, 100.0, 1.7);
  EXPECT_NEAR(bounded_pareto_partial_mean(other, 1.0, 100.0), other.mean(),
              1e-9 * other.mean());
}

TEST(PartialMean, AdditiveOverSubintervals) {
  const double total =
      bounded_pareto_partial_mean(kPaperSizes, 10.0, 21600.0);
  const double left = bounded_pareto_partial_mean(kPaperSizes, 10.0, 500.0);
  const double right =
      bounded_pareto_partial_mean(kPaperSizes, 500.0, 21600.0);
  EXPECT_NEAR(left + right, total, 1e-9 * total);
}

TEST(PartialMean, MatchesEmpiricalConditionalSum) {
  hs::rng::Xoshiro256 gen(5);
  const double lo = 50.0, hi = 1000.0;
  double sum = 0.0;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const double x = kPaperSizes.sample(gen);
    if (x >= lo && x < hi) {
      sum += x;
    }
  }
  const double empirical = sum / n;
  const double analytic = bounded_pareto_partial_mean(kPaperSizes, lo, hi);
  EXPECT_NEAR(empirical, analytic, 0.02 * analytic);
}

TEST(PartialMeanInverse, RoundTrips) {
  for (double x : {10.5, 50.0, 500.0, 5000.0, 21599.0}) {
    const double target = bounded_pareto_partial_mean(kPaperSizes, 10.0, x);
    EXPECT_NEAR(bounded_pareto_partial_mean_inverse(kPaperSizes, target), x,
                1e-6 * x);
  }
  // α != 1 branch.
  const BoundedPareto other(2.0, 64.0, 1.5);
  for (double x : {2.5, 8.0, 32.0}) {
    const double target = bounded_pareto_partial_mean(other, 2.0, x);
    EXPECT_NEAR(bounded_pareto_partial_mean_inverse(other, target), x,
                1e-6 * x);
  }
}

TEST(PartialMeanInverse, Boundaries) {
  EXPECT_NEAR(bounded_pareto_partial_mean_inverse(kPaperSizes, 0.0), 10.0,
              1e-9);
  EXPECT_NEAR(
      bounded_pareto_partial_mean_inverse(kPaperSizes, kPaperSizes.mean()),
      21600.0, 1.0);
}

TEST(Sita, CutoffsAscendAndCoverSupport) {
  SitaDispatcher sita({1.0, 2.0, 4.0}, kPaperSizes);
  const auto& cutoffs = sita.cutoffs();
  ASSERT_EQ(cutoffs.size(), 4u);
  EXPECT_DOUBLE_EQ(cutoffs.front(), 10.0);
  EXPECT_DOUBLE_EQ(cutoffs.back(), 21600.0);
  for (size_t i = 0; i + 1 < cutoffs.size(); ++i) {
    EXPECT_LT(cutoffs[i], cutoffs[i + 1]);
  }
}

TEST(Sita, LoadShareMatchesSpeedShare) {
  const std::vector<double> speeds = {1.0, 2.0, 5.0};
  SitaDispatcher sita(speeds, kPaperSizes);
  const auto& cutoffs = sita.cutoffs();
  const double mean = kPaperSizes.mean();
  const double total_speed = 8.0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    const double band_load =
        bounded_pareto_partial_mean(kPaperSizes, cutoffs[i], cutoffs[i + 1]);
    // Bands are ordered by ascending speed and speeds are already sorted.
    EXPECT_NEAR(band_load, speeds[i] / total_speed * mean,
                1e-6 * mean)
        << "band " << i;
  }
}

TEST(Sita, RoutesBySize) {
  SitaDispatcher sita({1.0, 1.0, 2.0}, kPaperSizes);
  hs::rng::Xoshiro256 gen(1);
  const auto& cutoffs = sita.cutoffs();
  // Jobs inside band i go to the i-th slowest machine (stable order).
  const double in_band0 = 0.5 * (cutoffs[0] + cutoffs[1]);
  const double in_band2 = 0.5 * (cutoffs[2] + cutoffs[3]);
  EXPECT_EQ(sita.pick_sized(gen, in_band0), 0u);
  EXPECT_EQ(sita.pick_sized(gen, in_band2), 2u);
  // Boundary and out-of-support sizes clamp to the edge bands.
  EXPECT_EQ(sita.pick_sized(gen, 1.0), 0u);
  EXPECT_EQ(sita.pick_sized(gen, 1e9), 2u);
}

TEST(Sita, FastestMachineGetsLargestJobs) {
  SitaDispatcher sita({4.0, 1.0}, kPaperSizes);  // machine 0 is fastest
  hs::rng::Xoshiro256 gen(1);
  EXPECT_EQ(sita.pick_sized(gen, 10.5), 1u);     // small job → slow machine
  EXPECT_EQ(sita.pick_sized(gen, 20000.0), 0u);  // huge job → fast machine
}

TEST(Sita, SingleMachineTakesEverything) {
  SitaDispatcher sita({3.0}, kPaperSizes);
  hs::rng::Xoshiro256 gen(1);
  EXPECT_EQ(sita.pick_sized(gen, 11.0), 0u);
  EXPECT_NEAR(sita.expected_job_fraction(0), 1.0, 1e-12);
}

TEST(Sita, ExpectedJobFractionsSumToOne) {
  SitaDispatcher sita({1.0, 3.0, 9.0, 2.0}, kPaperSizes);
  double sum = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    sum += sita.expected_job_fraction(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // With a heavy-tailed distribution most *jobs* are small, so the
  // slowest machine (index 0, smallest size band) receives the largest
  // share of jobs despite carrying the smallest share of load.
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GT(sita.expected_job_fraction(0),
              sita.expected_job_fraction(i))
        << "machine " << i;
  }
}

TEST(Sita, SizeBlindPickThrows) {
  SitaDispatcher sita({1.0, 2.0}, kPaperSizes);
  hs::rng::Xoshiro256 gen(1);
  EXPECT_THROW((void)sita.pick(gen), hs::util::CheckError);
  EXPECT_TRUE(sita.uses_size());
}

TEST(Sita, EndToEndEqualizesUtilization) {
  // Through the harness: SITA-E must drive all machines to roughly the
  // same utilization, like the weighted scheme but via size bands.
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 2.0, 4.0};
  config.rho = 0.6;
  config.sim_time = 400000.0;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.seed = 21;
  SitaDispatcher sita(config.speeds, kPaperSizes);
  const auto result = hs::cluster::run_simulation(config, sita);
  for (double u : result.machine_utilizations) {
    EXPECT_NEAR(u, 0.6, 0.1);
  }
  // Job fractions match the analytic band probabilities.
  for (size_t i = 0; i < config.speeds.size(); ++i) {
    EXPECT_NEAR(result.machine_fractions[i], sita.expected_job_fraction(i),
                0.02)
        << "machine " << i;
  }
}

}  // namespace
