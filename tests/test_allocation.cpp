// Tests for the Allocation value type.
#include <gtest/gtest.h>

#include <vector>

#include "alloc/allocation.h"
#include "util/check.h"

namespace {

using hs::alloc::Allocation;

TEST(Allocation, StoresFractions) {
  Allocation a({0.25, 0.75});
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[0], 0.25);
  EXPECT_DOUBLE_EQ(a[1], 0.75);
}

TEST(Allocation, NormalizesRoundingNoise) {
  Allocation a({0.5 + 1e-10, 0.5});
  EXPECT_NEAR(a[0] + a[1], 1.0, 1e-15);
}

TEST(Allocation, ClampsTinyNegativeNoise) {
  Allocation a({1.0 + 1e-12, -1e-12});
  EXPECT_EQ(a[1], 0.0);
  EXPECT_TRUE(a.is_excluded(1));
}

TEST(Allocation, RejectsSignificantNegative) {
  EXPECT_THROW(Allocation({1.1, -0.1}), hs::util::CheckError);
}

TEST(Allocation, RejectsWrongSum) {
  EXPECT_THROW(Allocation({0.5, 0.6}), hs::util::CheckError);
  EXPECT_THROW(Allocation({0.2, 0.2}), hs::util::CheckError);
}

TEST(Allocation, RejectsEmpty) {
  EXPECT_THROW(Allocation({}), hs::util::CheckError);
}

TEST(Allocation, ActiveCountSkipsZeros) {
  Allocation a({0.0, 0.5, 0.5, 0.0});
  EXPECT_EQ(a.active_count(), 2u);
  EXPECT_TRUE(a.is_excluded(0));
  EXPECT_FALSE(a.is_excluded(1));
}

TEST(Allocation, MachineUtilizations) {
  // 2 machines speeds {1, 3}, ρ=0.5 => λ/μ = 0.5·4 = 2 jobs of base work
  // per base-second. Proportional allocation keeps both at ρ.
  Allocation proportional({0.25, 0.75});
  const std::vector<double> speeds = {1.0, 3.0};
  const auto utils = proportional.machine_utilizations(speeds, 0.5);
  ASSERT_EQ(utils.size(), 2u);
  EXPECT_NEAR(utils[0], 0.5, 1e-12);
  EXPECT_NEAR(utils[1], 0.5, 1e-12);
}

TEST(Allocation, SkewedAllocationSkewsUtilization) {
  Allocation skewed({0.1, 0.9});
  const std::vector<double> speeds = {1.0, 3.0};
  const auto utils = skewed.machine_utilizations(speeds, 0.5);
  // Machine 0: 0.1·0.5·4/1 = 0.2; machine 1: 0.9·0.5·4/3 = 0.6.
  EXPECT_NEAR(utils[0], 0.2, 1e-12);
  EXPECT_NEAR(utils[1], 0.6, 1e-12);
  EXPECT_NEAR(skewed.max_machine_utilization(speeds, 0.5), 0.6, 1e-12);
}

TEST(Allocation, UtilizationSizeMismatchThrows) {
  Allocation a({1.0});
  const std::vector<double> speeds = {1.0, 2.0};
  EXPECT_THROW(a.machine_utilizations(speeds, 0.5), hs::util::CheckError);
}

TEST(Allocation, ToStringContainsFractions) {
  Allocation a({0.125, 0.875});
  const std::string s = a.to_string(3);
  EXPECT_NE(s.find("0.125"), std::string::npos);
  EXPECT_NE(s.find("0.875"), std::string::npos);
}

TEST(Allocation, SpanViewMatches) {
  Allocation a({0.4, 0.6});
  auto s = a.span();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 0.4);
}

}  // namespace
