// Deterministic chaos harness for the fault-tolerant serving runtime.
//
// Every scenario scripts a failure on a ManualClock — kill (drop
// releases), stall (release late), partition (stop heartbeats), revive
// — and asserts the serving invariants after each step:
//
//  * conservation: acquired − released == requests actually held;
//  * detection: a dead backend is Suspect within its deadline budget
//    (release_deadline × timeout_threshold + tick cadence) and receives
//    no picks afterwards;
//  * re-admission: a revived backend is routable again after one
//    success signal;
//  * degradation: brownout/fail-static/never-empty engage and disengage
//    exactly at their configured boundaries;
//  * persistence: snapshot → save → load → restore resumes the session
//    bit-identically, and corrupted files are rejected cleanly.
//
// Scenarios are deterministic (fixed seeds, scripted clocks). The one
// randomized soak reads HS_CHAOS_SEED from the environment (CI passes a
// random seed and logs it) so a failure is reproducible by exporting
// the logged seed.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc/allocation.h"
#include "core/policy.h"
#include "dispatch/fault_aware.h"
#include "dispatch/least_load.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "obs/trace.h"
#include "overload/admission.h"
#include "rng/rng.h"
#include "serving/clock.h"
#include "serving/health.h"
#include "serving/serving_dispatcher.h"
#include "serving/snapshot.h"
#include "serving/trace_io.h"
#include "util/check.h"
#include "util/env.h"

namespace {

using hs::serving::ManualClock;
using hs::serving::MachineHealth;
using hs::serving::ServingConfig;
using hs::serving::ServingDispatcher;
using hs::serving::ServingSnapshot;
using hs::serving::ServingStatus;

const std::vector<double> kSpeeds{1.0, 2.0, 4.0, 8.0};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "hs_chaos_" + name;
}

/// FaultAware (rebuild mode) over equal-fraction random dispatch: the
/// policy keeps sending traffic to a dead backend until a health
/// transition masks it out — exactly the stack that needs detection.
std::unique_ptr<hs::dispatch::Dispatcher> make_fault_aware_random() {
  auto rebuilder = [](const std::vector<bool>& available) {
    size_t up = 0;
    for (const bool a : available) {
      up += a ? 1 : 0;
    }
    std::vector<double> fractions(available.size(), 0.0);
    for (size_t i = 0; i < available.size(); ++i) {
      fractions[i] = available[i] ? 1.0 / static_cast<double>(up) : 0.0;
    }
    return std::make_unique<hs::dispatch::RandomDispatcher>(
        hs::alloc::Allocation(std::move(fractions)));
  };
  std::vector<bool> all_up(kSpeeds.size(), true);
  return std::make_unique<hs::dispatch::FaultAwareDispatcher>(
      rebuilder(all_up), rebuilder);
}

// ---- Detection ----------------------------------------------------------

TEST(ChaosDetectionTest, KilledBackendIsSuspectedAndRoutedAround) {
  auto stack = make_fault_aware_random();
  ManualClock clock;
  ServingConfig config;
  config.seed = 42;
  config.clock = &clock;
  config.health.release_deadline = 1.0;
  config.health.timeout_threshold = 3;
  ServingDispatcher serving(*stack, config);

  constexpr size_t kVictim = 2;
  uint64_t held_on_victim = 0;
  double suspected_at = -1.0;
  double victim_last_sent = -1.0;
  // 0.05 s arrival cadence; the victim never releases. Suspicion must
  // land within the detection budget: three victim deadlines must
  // expire, so at most (3 gaps between victim picks) + release_deadline
  // after the third pick. With p = 1/4 per pick the victim collects its
  // third request quickly; assert the hard bound against the scripted
  // timeline below instead of a probabilistic one.
  for (int i = 0; i < 400; ++i) {
    clock.advance(0.05);
    const size_t machine = serving.acquire(1.0);
    if (serving.health()->state(kVictim) == MachineHealth::kSuspect &&
        suspected_at < 0.0) {
      suspected_at = clock.now();
    }
    if (machine == kVictim) {
      if (suspected_at >= 0.0) {
        // Never-empty is off and three machines are healthy: a pick on
        // the suspect after detection is a routing bug.
        ADD_FAILURE() << "pick landed on suspected machine at t="
                      << clock.now();
      }
      ++held_on_victim;
      victim_last_sent = clock.now();
    } else {
      ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
    }
  }

  ASSERT_GE(held_on_victim, 3u) << "script never exercised the victim";
  ASSERT_GT(suspected_at, 0.0) << "victim was never suspected";
  // Detection latency: the third unanswered request was sent no later
  // than victim_last_sent, and its deadline expired release_deadline
  // later; the next acquire's opportunistic tick processes it. One
  // arrival gap of slack covers that tick.
  EXPECT_LE(suspected_at, victim_last_sent + 1.0 + 0.05 + 1e-9);
  EXPECT_EQ(serving.healthy_machines(), kSpeeds.size() - 1);
  EXPECT_GE(serving.timeouts(), 3u);
  // Conservation: everything not held on the victim was released.
  EXPECT_EQ(serving.in_flight(), static_cast<int64_t>(held_on_victim));
}

TEST(ChaosDetectionTest, LateReleasesRecoverAStalledBackend) {
  auto stack = make_fault_aware_random();
  ManualClock clock;
  ServingConfig config;
  config.seed = 7;
  config.clock = &clock;
  config.health.release_deadline = 0.5;
  config.health.timeout_threshold = 2;
  ServingDispatcher serving(*stack, config);

  constexpr size_t kStalled = 1;
  std::vector<size_t> held;
  for (int i = 0; i < 200 && held.size() < 2; ++i) {
    clock.advance(0.05);
    const size_t machine = serving.acquire(1.0);
    if (machine == kStalled) {
      held.push_back(machine);
    } else {
      ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
    }
  }
  ASSERT_EQ(held.size(), 2u);
  clock.advance(1.0);  // both deadlines expire
  serving.tick();
  ASSERT_EQ(serving.health()->state(kStalled), MachineHealth::kSuspect);
  EXPECT_EQ(serving.healthy_machines(), kSpeeds.size() - 1);

  // The stall ends: the held requests complete late. A late release is
  // a success signal (slow ≠ dead) — one recovers the backend.
  ASSERT_EQ(serving.release(kStalled, 1.0), ServingStatus::kOk);
  EXPECT_EQ(serving.health()->state(kStalled), MachineHealth::kHealthy);
  EXPECT_EQ(serving.healthy_machines(), kSpeeds.size());
  ASSERT_EQ(serving.release(kStalled, 1.0), ServingStatus::kOk);
  EXPECT_EQ(serving.in_flight(), 0);

  // Re-admission: the revived backend receives traffic again.
  bool revisited = false;
  for (int i = 0; i < 100 && !revisited; ++i) {
    clock.advance(0.05);
    const size_t machine = serving.acquire(1.0);
    revisited = machine == kStalled;
    ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
  }
  EXPECT_TRUE(revisited);
}

TEST(ChaosDetectionTest, HeartbeatPartitionIsDetectedAndHeals) {
  auto stack = make_fault_aware_random();
  ManualClock clock;
  ServingConfig config;
  config.seed = 5;
  config.clock = &clock;
  config.health.heartbeat.interval = 0.5;
  config.health.heartbeat.phi_threshold = 1.0;  // timeout ≈ mean·ln10
  ServingDispatcher serving(*stack, config);

  constexpr size_t kPartitioned = 3;
  // Establish every backend's cadence (≥ 2 beats each), then cut
  // kPartitioned off. No request traffic at all: heartbeat detection
  // must catch an *idle* backend.
  for (int beat = 0; beat < 4; ++beat) {
    clock.advance(0.5);
    for (size_t m = 0; m < kSpeeds.size(); ++m) {
      ASSERT_EQ(serving.report_heartbeat(m), ServingStatus::kOk);
    }
  }
  EXPECT_EQ(serving.healthy_machines(), kSpeeds.size());

  // Silence timeout = φ*·mean·ln10 ≈ 0.5 · 2.303 ≈ 1.15 s. Tick every
  // 0.25 s; the partitioned backend must be Suspect once its silence
  // exceeds the timeout (plus one tick of cadence).
  double suspected_at = -1.0;
  const double cut_at = clock.now();
  for (int step = 0; step < 12; ++step) {
    clock.advance(0.25);
    for (size_t m = 0; m < kSpeeds.size(); ++m) {
      if (m != kPartitioned) {
        ASSERT_EQ(serving.report_heartbeat(m), ServingStatus::kOk);
      }
    }
    serving.tick();
    if (suspected_at < 0.0 &&
        serving.health()->state(kPartitioned) == MachineHealth::kSuspect) {
      suspected_at = clock.now();
    }
  }
  ASSERT_GT(suspected_at, 0.0) << "partition was never detected";
  const double timeout = 0.5 * std::log(10.0);
  EXPECT_LE(suspected_at, cut_at + timeout + 0.25 + 1e-9);
  EXPECT_EQ(serving.healthy_machines(), kSpeeds.size() - 1);

  // Partition heals: the first heartbeat through recovers it.
  clock.advance(0.25);
  ASSERT_EQ(serving.report_heartbeat(kPartitioned), ServingStatus::kOk);
  EXPECT_EQ(serving.health()->state(kPartitioned), MachineHealth::kHealthy);
  EXPECT_EQ(serving.healthy_machines(), kSpeeds.size());
}

// ---- Degradation modes --------------------------------------------------

TEST(ChaosDegradationTest, BrownoutShedsWhileDegradedOnly) {
  auto stack = make_fault_aware_random();
  ManualClock clock;
  hs::overload::ProbabilisticShed shed(0.5);
  ServingConfig config;
  config.seed = 11;
  config.clock = &clock;
  config.health.release_deadline = 1.0;
  config.health.timeout_threshold = 1;
  config.degradation.brownout_below = 0.8;  // engage below 4·0.8 healthy
  config.degradation.brownout_policy = &shed;
  ServingDispatcher serving(*stack, config);

  // Healthy cluster: try_acquire never sheds.
  for (int i = 0; i < 100; ++i) {
    clock.advance(0.01);
    size_t machine = 0;
    ASSERT_EQ(serving.try_acquire(1.0, machine), ServingStatus::kOk);
    ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
  }
  EXPECT_EQ(serving.sheds(), 0u);
  EXPECT_EQ(serving.degraded_modes(), 0u);

  // One rejected result suspects machine 0 (threshold 1) → 3 healthy
  // < 3.2 → brownout engages.
  clock.advance(0.01);
  ASSERT_EQ(serving.report_result(0, false), ServingStatus::kOk);
  EXPECT_EQ(serving.degraded_modes(), 1u);

  uint64_t ok = 0;
  for (int i = 0; i < 400; ++i) {
    clock.advance(0.01);
    size_t machine = 0;
    const ServingStatus status = serving.try_acquire(1.0, machine);
    if (status == ServingStatus::kOk) {
      ++ok;
      ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
    } else {
      ASSERT_EQ(status, ServingStatus::kShed);
    }
  }
  const uint64_t sheds = serving.sheds();
  EXPECT_EQ(ok + sheds, 400u);
  // p = 0.5 over 400 deterministic draws; a band of ±100 around the
  // mean is ~10 sigma — failure means the admission wiring broke, not
  // bad luck.
  EXPECT_GT(sheds, 100u);
  EXPECT_LT(sheds, 300u);
  // acquire() keeps its always-routes contract even while degraded.
  for (int i = 0; i < 50; ++i) {
    clock.advance(0.01);
    const size_t machine = serving.acquire(1.0);
    ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
  }
  EXPECT_EQ(serving.sheds(), sheds);

  // Recovery disengages brownout; goodput returns to 100%.
  clock.advance(0.01);
  ASSERT_EQ(serving.report_result(0, true), ServingStatus::kOk);
  EXPECT_EQ(serving.degraded_modes(), 0u);
  for (int i = 0; i < 100; ++i) {
    clock.advance(0.01);
    size_t machine = 0;
    ASSERT_EQ(serving.try_acquire(1.0, machine), ServingStatus::kOk);
    ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
  }
  EXPECT_EQ(serving.sheds(), sheds);
}

TEST(ChaosDegradationTest, NeverEmptyRoutesToLeastRecentlySuspected) {
  auto stack = make_fault_aware_random();
  ManualClock clock;
  ServingConfig config;
  config.seed = 3;
  config.clock = &clock;
  config.health.release_deadline = 1.0;
  config.health.timeout_threshold = 1;
  config.degradation.never_empty = true;
  ServingDispatcher serving(*stack, config);

  // Suspect every backend, one per 0.1 s: machine 0 first, then 1, 2, 3.
  for (size_t m = 0; m < kSpeeds.size(); ++m) {
    clock.advance(0.1);
    ASSERT_EQ(serving.report_result(m, false), ServingStatus::kOk);
  }
  EXPECT_EQ(serving.healthy_machines(), 0u);
  EXPECT_EQ(serving.degraded_modes(), 4u);

  // All-suspect: acquire still answers, and with the backend suspected
  // longest ago — machine 0.
  for (int i = 0; i < 20; ++i) {
    clock.advance(0.01);
    EXPECT_EQ(serving.acquire(1.0), 0u);
  }
  EXPECT_EQ(serving.in_flight(), 20);

  // One backend recovers → never-empty disengages and normal routing
  // resumes on the sole healthy machine.
  clock.advance(0.01);
  ASSERT_EQ(serving.report_result(2, true), ServingStatus::kOk);
  EXPECT_EQ(serving.degraded_modes(), 0u);
  EXPECT_EQ(serving.healthy_machines(), 1u);
  for (int i = 0; i < 20; ++i) {
    clock.advance(0.01);
    EXPECT_EQ(serving.acquire(1.0), 2u);
  }
}

TEST(ChaosDegradationTest, FailStaticPinsFractionsUntilFeedbackResumes) {
  // Skewed round-robin; the pinned fallback is the equal split, whose
  // smooth-RR cycle visits every machine once per 4 picks.
  hs::dispatch::SmoothRoundRobinDispatcher inner(
      hs::alloc::Allocation({0.7, 0.1, 0.1, 0.1}));
  ManualClock clock;
  ServingConfig config;
  config.seed = 9;
  config.clock = &clock;
  config.degradation.fail_static_after = 5.0;
  config.degradation.fail_static_fractions = {0.25, 0.25, 0.25, 0.25};
  ServingDispatcher serving(inner, config);

  clock.advance(1.0);
  const size_t first = serving.acquire(1.0);
  (void)first;
  // Feedback goes silent with work in flight; past the staleness budget
  // the watchdog pins the stack to the last-known-good fractions.
  clock.advance(4.0);
  serving.tick();
  EXPECT_EQ(serving.degraded_modes(), 0u) << "engaged before the budget";
  clock.advance(1.5);
  serving.tick();
  EXPECT_EQ(serving.degraded_modes(), 2u);

  // Pinned equal fractions: each window of 4 picks covers all machines.
  std::vector<int> seen(kSpeeds.size(), 0);
  for (int i = 0; i < 8; ++i) {
    clock.advance(0.01);
    ++seen[serving.acquire(1.0)];
  }
  for (size_t m = 0; m < kSpeeds.size(); ++m) {
    EXPECT_EQ(seen[m], 2) << "machine " << m;
  }

  // A release is fresh feedback: fail-static disengages.
  clock.advance(0.01);
  ASSERT_EQ(serving.release(first, 1.0), ServingStatus::kOk);
  EXPECT_EQ(serving.degraded_modes(), 0u);
}

// ---- Bit-identical-when-off pins ---------------------------------------

TEST(ChaosPinTest, IdleHealthLayerDoesNotPerturbPicks) {
  // Health compiled in and *enabled* but never firing (deadline far
  // beyond the session) must yield the same pick sequence as a plain
  // config: detection costs nothing until something actually expires.
  auto baseline_stack = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORAN, kSpeeds, 0.7);
  auto health_stack = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORAN, kSpeeds, 0.7);
  ManualClock baseline_clock;
  ManualClock health_clock;
  ServingConfig baseline_config;
  baseline_config.seed = 21;
  baseline_config.clock = &baseline_clock;
  ServingConfig health_config = baseline_config;
  health_config.clock = &health_clock;
  health_config.health.release_deadline = 1e9;
  ServingDispatcher baseline(*baseline_stack, baseline_config);
  ServingDispatcher with_health(*health_stack, health_config);
  EXPECT_EQ(baseline.health(), nullptr);
  ASSERT_NE(with_health.health(), nullptr);

  for (int i = 0; i < 300; ++i) {
    baseline_clock.advance(0.01);
    health_clock.advance(0.01);
    const double size = 0.5 + 0.1 * (i % 5);
    const size_t expected = baseline.acquire(size);
    EXPECT_EQ(with_health.acquire(size), expected);
    ASSERT_EQ(baseline.release(expected, size), ServingStatus::kOk);
    ASSERT_EQ(with_health.release(expected, size), ServingStatus::kOk);
  }
}

// ---- Snapshot / restore -------------------------------------------------

TEST(ChaosSnapshotTest, RestoreResumesBitIdentically) {
  // Random policy (draws the RNG every pick) — the strictest test of
  // the restored decision stream.
  auto original_stack = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORAN, kSpeeds, 0.7);
  ManualClock original_clock;
  ServingConfig config;
  config.seed = 77;
  config.clock = &original_clock;
  ServingDispatcher original(*original_stack, config);

  // Warm up with mixed traffic, leaving three requests in flight.
  std::vector<size_t> in_flight;
  for (int i = 0; i < 250; ++i) {
    original_clock.advance(0.02);
    const size_t machine = original.acquire(1.0 + 0.1 * (i % 3));
    if (i % 80 == 79) {
      in_flight.push_back(machine);  // stranded across the "crash"
    } else {
      ASSERT_EQ(original.release(machine, 1.0), ServingStatus::kOk);
    }
  }
  ASSERT_EQ(in_flight.size(), 3u);

  // Checkpoint → disk → fresh process (fresh identically shaped stack).
  const ServingSnapshot captured = original.capture_snapshot();
  const std::string path = temp_path("resume.snap");
  hs::serving::save_snapshot_binary(path, captured);
  const ServingSnapshot loaded = hs::serving::load_snapshot_binary(path);
  EXPECT_EQ(loaded.seed, captured.seed);
  EXPECT_EQ(loaded.acquired, captured.acquired);
  EXPECT_EQ(loaded.released, captured.released);
  EXPECT_EQ(loaded.rng_state, captured.rng_state);
  EXPECT_EQ(loaded.policy, captured.policy);
  ASSERT_EQ(loaded.policy_state.size(), captured.policy_state.size());
  for (size_t i = 0; i < loaded.policy_state.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(loaded.policy_state[i]),
              std::bit_cast<uint64_t>(captured.policy_state[i]));
  }
  EXPECT_EQ(loaded.outstanding, captured.outstanding);

  auto restored_stack = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORAN, kSpeeds, 0.7);
  ManualClock restored_clock(captured.session_time);
  ServingConfig restored_config;
  restored_config.seed = 1;  // overwritten by restore
  restored_config.clock = &restored_clock;
  ServingDispatcher restored(*restored_stack, restored_config);
  restored.restore(loaded);
  EXPECT_EQ(restored.seed(), 77u);
  EXPECT_EQ(restored.acquired(), original.acquired());
  EXPECT_EQ(restored.in_flight(), original.in_flight());

  // Releases for requests the dead process had in flight are accepted.
  ASSERT_EQ(restored.release(in_flight[0], 1.0), ServingStatus::kOk);
  ASSERT_EQ(original.release(in_flight[0], 1.0), ServingStatus::kOk);

  // Resume: both sessions must continue identically — same picks, same
  // RNG draws, same counters.
  for (int i = 0; i < 250; ++i) {
    original_clock.advance(0.02);
    restored_clock.advance(0.02);
    const double size = 0.8 + 0.05 * (i % 7);
    const size_t expected = original.acquire(size);
    ASSERT_EQ(restored.acquire(size), expected) << "diverged at step " << i;
    ASSERT_EQ(original.release(expected, size), ServingStatus::kOk);
    ASSERT_EQ(restored.release(expected, size), ServingStatus::kOk);
  }
  EXPECT_EQ(restored.acquired(), original.acquired());
  EXPECT_EQ(restored.released(), original.released());
}

TEST(ChaosSnapshotTest, HealthStateSurvivesTheRoundTrip) {
  auto stack = make_fault_aware_random();
  ManualClock clock;
  ServingConfig config;
  config.seed = 13;
  config.clock = &clock;
  config.health.release_deadline = 1.0;
  config.health.timeout_threshold = 1;
  ServingDispatcher serving(*stack, config);

  clock.advance(0.5);
  ASSERT_EQ(serving.report_result(1, false), ServingStatus::kOk);
  ASSERT_EQ(serving.health()->state(1), MachineHealth::kSuspect);

  const ServingSnapshot snap = serving.capture_snapshot();
  ASSERT_EQ(snap.health.size(), kSpeeds.size());
  const std::string path = temp_path("health.snap");
  hs::serving::save_snapshot_binary(path, snap);

  auto restored_stack = make_fault_aware_random();
  ManualClock restored_clock(snap.session_time);
  ServingConfig restored_config = config;
  restored_config.clock = &restored_clock;
  ServingDispatcher restored(*restored_stack, restored_config);
  restored.restore(hs::serving::load_snapshot_binary(path));
  EXPECT_EQ(restored.health()->state(1), MachineHealth::kSuspect);
  EXPECT_EQ(restored.healthy_machines(), kSpeeds.size() - 1);
  // The restored stack routes around the suspect without re-detecting.
  for (int i = 0; i < 50; ++i) {
    restored_clock.advance(0.01);
    EXPECT_NE(restored.acquire(1.0), 1u);
  }
}

TEST(ChaosSnapshotTest, MismatchedStackIsRefused) {
  auto stack = make_fault_aware_random();
  ManualClock clock;
  ServingConfig config;
  config.clock = &clock;
  ServingDispatcher serving(*stack, config);
  ServingSnapshot snap = serving.capture_snapshot();

  hs::dispatch::LeastLoadDispatcher other(kSpeeds);
  ServingDispatcher wrong_policy(other);
  EXPECT_THROW(wrong_policy.restore(snap), hs::util::CheckError);

  hs::dispatch::LeastLoadDispatcher small({1.0, 2.0});
  ServingDispatcher wrong_count(small);
  EXPECT_THROW(wrong_count.restore(snap), hs::util::CheckError);
}

// ---- Corruption sweeps --------------------------------------------------

std::vector<char> slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  std::vector<char> bytes(static_cast<size_t>(file.tellg()));
  file.seekg(0);
  file.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Flip single bits through the whole header and seeded-random payload
/// bytes, plus truncate at every prefix length; `load` must either
/// succeed or throw CheckError — anything else (UB under ASan/UBSan, a
/// different exception, a crash) fails the test.
template <typename LoadFn>
void corruption_sweep(const std::string& path,
                      const std::vector<char>& valid, LoadFn load) {
  const size_t header_sweep = std::min<size_t>(valid.size(), 96);
  for (size_t byte = 0; byte < header_sweep; ++byte) {
    for (const unsigned mask : {0x01u, 0x80u}) {
      std::vector<char> corrupt = valid;
      corrupt[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupt[byte]) ^ mask);
      spit(path, corrupt);
      try {
        load(path);
      } catch (const hs::util::CheckError&) {
        // clean rejection — the acceptable failure mode
      }
    }
  }
  hs::rng::Xoshiro256 gen(0xC0FFEE);
  for (int trial = 0; trial < 128; ++trial) {
    std::vector<char> corrupt = valid;
    const size_t byte = gen.next_below(corrupt.size());
    corrupt[byte] = static_cast<char>(gen.next_u64() & 0xFF);
    spit(path, corrupt);
    try {
      load(path);
    } catch (const hs::util::CheckError&) {
    }
  }
  for (size_t len = 0; len < valid.size(); len += 7) {
    std::vector<char> prefix(valid.begin(),
                             valid.begin() + static_cast<long>(len));
    spit(path, prefix);
    try {
      load(path);
    } catch (const hs::util::CheckError&) {
    }
  }
}

TEST(ChaosCorruptionTest, TraceFileFlipsAreRejectedCleanly) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ManualClock clock;
  ServingConfig config;
  config.clock = &clock;
  config.record_capacity = 32;
  ServingDispatcher serving(inner, config);
  for (int i = 0; i < 32; ++i) {
    clock.advance(0.1);
    const size_t machine = serving.acquire(1.0);
    ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
  }
  const std::string path = temp_path("sweep.trace");
  hs::serving::save_trace_binary(path, serving.snapshot());
  const std::vector<char> valid = slurp(path);
  ASSERT_GT(valid.size(), 40u);

  corruption_sweep(path, valid, [](const std::string& p) {
    (void)hs::serving::load_trace_binary(p);
  });
}

TEST(ChaosCorruptionTest, SnapshotFileFlipsAreRejectedCleanly) {
  auto stack = make_fault_aware_random();
  ManualClock clock;
  ServingConfig config;
  config.seed = 17;
  config.clock = &clock;
  config.health.release_deadline = 1.0;
  ServingDispatcher serving(*stack, config);
  for (int i = 0; i < 64; ++i) {
    clock.advance(0.05);
    const size_t machine = serving.acquire(1.0);
    if (i % 5 != 4) {
      ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
    }
  }
  const std::string path = temp_path("sweep.snap");
  hs::serving::save_snapshot_binary(path, serving.capture_snapshot());
  const std::vector<char> valid = slurp(path);
  ASSERT_GT(valid.size(), 80u);

  corruption_sweep(path, valid, [](const std::string& p) {
    (void)hs::serving::load_snapshot_binary(p);
  });
}

// ---- Randomized soak (seed logged for reproduction) ---------------------

TEST(ChaosSoakTest, RandomizedScheduleKeepsInvariants) {
  const uint64_t seed = hs::util::seed_from_env("HS_CHAOS_SEED", 1);
  hs::rng::Xoshiro256 chaos(seed);

  auto stack = make_fault_aware_random();
  ManualClock clock;
  hs::overload::ProbabilisticShed shed(0.25);
  ServingConfig config;
  config.seed = seed ^ 0x5eed;
  config.clock = &clock;
  config.health.release_deadline = 0.3;
  config.health.timeout_threshold = 2;
  config.health.heartbeat.interval = 0.2;
  config.degradation.brownout_below = 0.6;
  config.degradation.brownout_policy = &shed;
  config.degradation.never_empty = true;
  ServingDispatcher serving(*stack, config);

  std::vector<size_t> held;
  uint64_t dropped = 0;  // releases deliberately never sent
  uint64_t last_timeouts = 0;
  for (int step = 0; step < 5000; ++step) {
    const uint64_t op = chaos.next_below(100);
    clock.advance(0.001 + 0.01 * static_cast<double>(chaos.next_below(5)));
    if (op < 45) {
      size_t machine = 0;
      const ServingStatus status = serving.try_acquire(1.0, machine);
      if (status == ServingStatus::kOk) {
        held.push_back(machine);
      } else {
        ASSERT_EQ(status, ServingStatus::kShed);
      }
    } else if (op < 75) {
      if (!held.empty()) {
        const size_t idx = chaos.next_below(held.size());
        const size_t machine = held[idx];
        held[idx] = held.back();
        held.pop_back();
        if (chaos.next_below(8) == 0) {
          ++dropped;  // simulate a lost completion → timeout fodder
        } else {
          ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
        }
      }
    } else if (op < 85) {
      ASSERT_EQ(serving.report_heartbeat(chaos.next_below(kSpeeds.size())),
                ServingStatus::kOk);
    } else if (op < 92) {
      ASSERT_EQ(serving.report_result(chaos.next_below(kSpeeds.size()),
                                      chaos.next_below(4) != 0),
                ServingStatus::kOk);
    } else {
      serving.tick();
    }

    // Invariants after every step.
    ASSERT_EQ(serving.in_flight(),
              static_cast<int64_t>(held.size() + dropped));
    ASSERT_LE(serving.healthy_machines(), kSpeeds.size());
    ASSERT_GE(serving.timeouts(), last_timeouts) << "timeouts regressed";
    last_timeouts = serving.timeouts();
  }

  // Drain what we still hold; dropped releases stay in flight forever.
  for (const size_t machine : held) {
    ASSERT_EQ(serving.release(machine, 1.0), ServingStatus::kOk);
  }
  EXPECT_EQ(serving.in_flight(), static_cast<int64_t>(dropped));
}

// ---- Watchdog concurrency (runs under TSan in CI) -----------------------

TEST(ChaosConcurrencyTest, WatchdogTicksWhileWorkersServe) {
  hs::dispatch::LeastLoadDispatcher inner(kSpeeds);
  ServingConfig config;  // WallClock: real time drives the deadlines
  config.health.release_deadline = 1e-4;
  config.health.timeout_threshold = 4;
  config.health.heartbeat.interval = 1e-3;
  ServingDispatcher serving(inner, config);

  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 5000;
  std::atomic<uint64_t> dropped{0};
  std::atomic<bool> stop{false};

  std::thread watchdog([&serving, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      serving.tick();
      std::this_thread::yield();
    }
    serving.tick();
  });

  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&serving, &dropped, t] {
      hs::rng::Xoshiro256 gen(t + 1);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const size_t machine = serving.acquire(1.0);
        if (gen.next_below(64) == 0) {
          dropped.fetch_add(1, std::memory_order_relaxed);  // timeout fodder
        } else {
          if (serving.release(machine, 1.0) != ServingStatus::kOk) {
            std::abort();  // conservation broken under contention
          }
        }
        if (gen.next_below(16) == 0) {
          (void)serving.report_heartbeat(machine);
        }
      }
    });
  }
  for (auto& worker : pool) {
    worker.join();
  }
  stop.store(true, std::memory_order_relaxed);
  watchdog.join();

  EXPECT_EQ(serving.acquired(), kThreads * kOpsPerThread);
  EXPECT_EQ(serving.in_flight(),
            static_cast<int64_t>(dropped.load(std::memory_order_relaxed)));
  EXPECT_LE(serving.healthy_machines(), kSpeeds.size());
}

}  // namespace
