// Live-serving demo: the paper's policies as an in-process load
// balancer under a multi-threaded synthetic workload, with trace
// record/replay back into the simulator.
//
// Serve mode (default) runs an open-loop load generator: worker threads
// draw arrival instants from a Poisson (or bursty 2-state MMPP) process
// on the wall clock, sleep until each instant, and call
// ServingDispatcher::acquire() — open-loop, so a slow dispatcher cannot
// throttle its own offered load. Each request then "runs" on a mock
// backend for size/speed seconds of real time before the worker calls
// release() with the measured work, which feeds Least-Load estimates
// and online re-estimation exactly like the simulator's departure
// reports. Per-acquire decision latency lands in a log-scale histogram
// (merged across threads at the end), and the session's arrival stream
// is recorded for replay.
//
// Replay mode (--replay file) loads a recorded session and re-runs it
// in the discrete-event simulator via serving::replay() — the recorded
// wall-clock arrivals become virtual-time arrivals, the same policy
// routes them, and the run is deterministic: the demo replays twice and
// checks the key metrics agree bit-for-bit. Record a session with
// --record-out, then what-if it here under a different policy or
// machine set: that is the capacity-planning / policy-A/B bridge.
//
// The arrival rate defaults to λ = ρ·Σs/E[size] with E[size] chosen so
// the *recorded* session replays at utilization ρ — the live demo and
// its simulated replay describe the same operating point.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "rng/rng.h"
#include "serving/replay.h"
#include "serving/serving_dispatcher.h"
#include "serving/trace_io.h"
#include "stats/histogram.h"
#include "util/check.h"
#include "util/cli.h"
#include "workload/arrival.h"

namespace {

using hs::serving::RecordedTrace;
using hs::serving::ServingDispatcher;
using Clock = std::chrono::steady_clock;

std::vector<double> demo_speeds(size_t n, uint64_t seed) {
  hs::rng::Xoshiro256 gen(seed);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.5, 20.0);
  }
  return speeds;
}

hs::core::PolicyKind parse_policy(const std::string& name) {
  if (name == "least-load") return hs::core::PolicyKind::kLeastLoad;
  if (name == "orr") return hs::core::PolicyKind::kORR;
  if (name == "oran") return hs::core::PolicyKind::kORAN;
  if (name == "wrr") return hs::core::PolicyKind::kWRR;
  if (name == "wran") return hs::core::PolicyKind::kWRAN;
  HS_CHECK(false, "unknown policy '" << name
                                     << "' (least-load|orr|oran|wrr|wran)");
  return hs::core::PolicyKind::kLeastLoad;  // unreachable
}

/// A request held by a mock backend until its wall-clock completion.
struct InFlight {
  Clock::time_point done;
  size_t machine = 0;
  double work = 0.0;
  bool operator>(const InFlight& other) const { return done > other.done; }
};

struct WorkerResult {
  hs::stats::Histogram latency{1e-8, 1e-3, 50,
                               hs::stats::Histogram::Scale::kLog};
  uint64_t issued = 0;
};

/// One open-loop worker: its own arrival process and RNG stream, a
/// pending-completion heap standing in for the backends it spoke to.
void worker(ServingDispatcher& serving, const std::vector<double>& speeds,
            hs::workload::ArrivalProcess& arrivals, double mean_size,
            uint64_t seed, double duration, WorkerResult& out) {
  hs::rng::Xoshiro256 gen(seed);
  hs::rng::Exponential size_dist(1.0 / mean_size);
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> pending;
  const auto start = Clock::now();
  const auto end = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(duration));
  double t = 0.0;
  for (;;) {
    t += arrivals.next_interarrival(gen);
    const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(t));
    if (due >= end) {
      break;
    }
    // Release every mock completion that came due, then sleep until the
    // next arrival instant (if it is still ahead — open-loop never
    // skips a late arrival, it just issues immediately).
    while (!pending.empty() && pending.top().done <= Clock::now()) {
      (void)serving.release(pending.top().machine, pending.top().work);
      pending.pop();
    }
    std::this_thread::sleep_until(due);

    const double size = size_dist.sample(gen);
    const auto t0 = Clock::now();
    const size_t machine = serving.acquire(size);
    const auto t1 = Clock::now();
    out.latency.add(std::chrono::duration<double>(t1 - t0).count());
    ++out.issued;
    pending.push(InFlight{
        t1 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(size / speeds[machine])),
        machine, size});
  }
  // Drain: every mock backend finishes its resident requests.
  while (!pending.empty()) {
    if (pending.top().done > Clock::now()) {
      std::this_thread::sleep_until(pending.top().done);
    }
    (void)serving.release(pending.top().machine, pending.top().work);
    pending.pop();
  }
}

void print_replay_summary(const char* label,
                          const hs::cluster::SimulationResult& r) {
  std::printf("  %-18s completed %llu of %llu   mean RT %.6f s   "
              "mean ratio %.4f\n",
              label, static_cast<unsigned long long>(r.completed_jobs),
              static_cast<unsigned long long>(r.total_arrivals),
              r.mean_response_time, r.mean_response_ratio);
}

int run_replay(const std::string& path, hs::core::PolicyKind kind,
               const std::vector<double>& speeds, double rho) {
  const RecordedTrace recorded = hs::serving::load_trace_binary(path);
  const auto& trace = recorded.trace;
  std::printf("loaded %s: %zu arrivals, horizon %.3f s, seed %llu, "
              "recorded at unix %.3f s\n",
              path.c_str(), trace.size(), trace.horizon(),
              static_cast<unsigned long long>(recorded.seed),
              static_cast<double>(recorded.recorded_unix_nanos) * 1e-9);
  std::printf("  mean rate %.1f req/s, mean size %.6f base-seconds\n",
              1.0 / trace.mean_interarrival(), trace.mean_size());

  auto dispatcher = hs::core::make_policy_dispatcher(kind, speeds, rho);
  const auto first = hs::serving::replay(recorded, speeds, *dispatcher);
  print_replay_summary("replay #1", first);
  const auto second = hs::serving::replay(recorded, speeds, *dispatcher);
  print_replay_summary("replay #2", second);

  // Determinism self-check: a replay is an experiment cell, so two runs
  // of it must agree bit-for-bit.
  HS_CHECK(first.completed_jobs == second.completed_jobs &&
               first.total_arrivals == second.total_arrivals &&
               first.mean_response_time == second.mean_response_time &&
               first.mean_response_ratio == second.mean_response_ratio &&
               first.events_fired == second.events_fired,
           "replay is not deterministic — bit-identical replay broken");
  std::printf("  deterministic: replays #1 and #2 bit-identical\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  hs::util::ArgParser parser(
      "Multi-threaded live-serving demo with trace record/replay.");
  parser.add_option("policy", "least-load",
                    "dispatch policy: least-load|orr|oran|wrr|wran");
  parser.add_option("machines", "16", "number of mock backend machines");
  parser.add_option("rho", "0.7", "target utilization of the mock cluster");
  parser.add_option("rate", "20000", "offered load, acquires/sec");
  parser.add_option("duration", "3", "serving session length, seconds");
  parser.add_option("threads", "4", "load-generator threads");
  parser.add_option("mode", "poisson", "arrival process: poisson|bursty");
  parser.add_option("seed", "20260808", "session seed");
  parser.add_option("record-out", "", "write the recorded trace here");
  parser.add_option("replay", "",
                    "replay a recorded trace in the simulator instead of "
                    "serving");
  if (!parser.parse(argc, argv)) {
    return 0;
  }

  const auto kind = parse_policy(parser.get_string("policy"));
  const auto machines = static_cast<size_t>(parser.get_long("machines"));
  const double rho = parser.get_double("rho");
  const auto seed = static_cast<uint64_t>(parser.get_long("seed"));
  const std::vector<double> speeds = demo_speeds(machines, seed);

  if (!parser.get_string("replay").empty()) {
    return run_replay(parser.get_string("replay"), kind, speeds, rho);
  }

  const double rate = parser.get_double("rate");
  const double duration = parser.get_double("duration");
  const auto threads = static_cast<size_t>(parser.get_long("threads"));
  const std::string mode = parser.get_string("mode");
  HS_CHECK(rate > 0 && duration > 0 && threads > 0, "invalid load shape");

  // E[size] such that offered work rate/Σs = ρ: the recorded session
  // replays in the simulator at the same operating point it was served
  // at.
  double total_speed = 0.0;
  for (double s : speeds) total_speed += s;
  const double mean_size = rho * total_speed / rate;

  auto dispatcher = hs::core::make_policy_dispatcher(kind, speeds, rho);
  hs::serving::ServingConfig config;
  config.seed = seed;
  config.record_capacity = static_cast<size_t>(rate * duration * 2) + 1024;
  ServingDispatcher serving(*dispatcher, config);

  std::printf("serving %s over %zu machines (Σs = %.1f): %.0f req/s %s "
              "for %.1f s on %zu threads...\n",
              dispatcher->name().c_str(), machines, total_speed, rate,
              mode.c_str(), duration, threads);

  std::vector<WorkerResult> results(threads);
  std::vector<std::unique_ptr<hs::workload::ArrivalProcess>> processes;
  const double per_thread_rate = rate / static_cast<double>(threads);
  for (size_t i = 0; i < threads; ++i) {
    if (mode == "bursty") {
      // Calm/burst alternation: half-rate lulls, 3x-rate bursts, with
      // sojourns short enough that every thread sees several cycles.
      processes.push_back(std::make_unique<hs::workload::Mmpp2Arrivals>(
          0.5 * per_thread_rate, 3.0 * per_thread_rate, 0.5, 0.15));
    } else {
      HS_CHECK(mode == "poisson", "unknown mode '" << mode << "'");
      processes.push_back(
          std::make_unique<hs::workload::PoissonArrivals>(per_thread_rate));
    }
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    pool.emplace_back([&, i] {
      worker(serving, speeds, *processes[i], mean_size, seed + 1000 + i,
             duration, results[i]);
    });
  }
  for (auto& t : pool) {
    t.join();
  }

  // Conservation: every acquire was released (the workers drained), so
  // nothing is in flight and Least-Load's estimates are back to zero.
  HS_CHECK(serving.acquired() == serving.released() &&
               serving.in_flight() == 0,
           "conservation violated: acquired " << serving.acquired()
                                              << " != released "
                                              << serving.released());

  hs::stats::Histogram latency = std::move(results[0].latency);
  uint64_t issued = results[0].issued;
  for (size_t i = 1; i < threads; ++i) {
    latency.merge(results[i].latency);
    issued += results[i].issued;
  }
  const double elapsed = serving.session_seconds();
  std::printf("issued %llu acquires in %.2f s (%.0f/s sustained)\n",
              static_cast<unsigned long long>(issued), elapsed,
              static_cast<double>(issued) / elapsed);
  if (latency.total() > 0) {
    std::printf("acquire latency: p50 %.0f ns   p99 %.0f ns   p999 %.0f ns\n",
                latency.quantile(0.50) * 1e9, latency.quantile(0.99) * 1e9,
                latency.quantile(0.999) * 1e9);
  }
  std::printf("recorded %llu arrivals (%llu dropped past capacity)\n",
              static_cast<unsigned long long>(serving.record_count()),
              static_cast<unsigned long long>(serving.record_dropped()));

  const std::string record_out = parser.get_string("record-out");
  if (!record_out.empty()) {
    const RecordedTrace recorded = serving.snapshot();
    hs::serving::save_trace_binary(record_out, recorded);
    std::printf("wrote %zu-arrival trace to %s — replay with "
                "--replay %s\n",
                recorded.trace.size(), record_out.c_str(),
                record_out.c_str());
  }
  return 0;
}
