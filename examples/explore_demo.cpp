// Scenario: a bug hunt, end to end — find, shrink, replay.
//
// This demo plants a real defect (FaultConfig::test_only_drop_leak: a
// job dropped on its third attempt vanishes from the whole-run drop
// counter) and walks the explorer's full pipeline against it:
//
//   1. FIND    — the seed-soak baseline misses the bug (no natural run
//                at MTBF 1e8 crashes a machine), then the
//                bounded-exhaustive pass over forced crash/loss
//                schedules trips the job-conservation invariant.
//   2. SHRINK  — ddmin deletes every schedule op that is not needed to
//                reproduce the violation, leaving a minimal repro.
//   3. REPLAY  — the shrunk HSSCHED1 file re-triggers the identical
//                violation, bit-for-bit, in a fresh run.
//
// Exits nonzero if any stage misbehaves, so CI can run it as a drill.
#include <cstdio>

#include "explore/explorer.h"
#include "explore/invariants.h"
#include "explore/schedule.h"
#include "explore/shrink.h"

int main() {
  using namespace hs::explore;

  std::printf("== 0. the planted defect =============================\n");
  std::printf(
      "FaultConfig::test_only_drop_leak: a drop on attempt >= 3 skips the\n"
      "whole-run drop counter, breaking\n"
      "  total_arrivals = completed + shed + dropped + in_flight\n\n");

  ExploreConfig config;
  config.plant_bug = true;
  const Explorer explorer(config);

  std::printf("== 1a. baseline: seed soak (what we had before) ======\n");
  const SearchStats soak = explorer.run_random(40, /*seed=*/1);
  std::printf("40 random-seed runs: %s (%zu coverage tuples)\n\n",
              soak.found_violation ? "violation found" : "nothing found",
              soak.coverage_tuples());
  if (soak.found_violation) {
    std::printf("unexpected: the soak should not reach the bug\n");
    return 1;
  }

  std::printf("== 1b. find: bounded-exhaustive schedule search ======\n");
  std::printf("space: %llu schedules (forced first-crash times x forced "
              "first dispatch losses)\n",
              static_cast<unsigned long long>(
                  explorer.exhaustive_space_size()));
  const SearchStats found = explorer.run_exhaustive();
  if (!found.found_violation) {
    std::printf("expected a violation and found none\n");
    return 1;
  }
  std::printf("violation after %llu runs:\n  %s\n",
              static_cast<unsigned long long>(found.runs),
              found.violation.to_string().c_str());
  std::printf("schedule (%zu ops):\n", found.counterexample.ops.size());
  for (const auto& op : found.counterexample.ops) {
    std::printf("  %s\n", op.describe().c_str());
  }
  std::printf("\n");

  std::printf("== 2. shrink: ddmin to a minimal repro ===============\n");
  const ShrinkResult minimal =
      shrink(explorer, found.counterexample, found.violation.invariant);
  std::printf("%llu ops -> %zu ops in %llu extra runs:\n",
              static_cast<unsigned long long>(minimal.initial_ops),
              minimal.schedule.ops.size(),
              static_cast<unsigned long long>(minimal.runs));
  for (const auto& op : minimal.schedule.ops) {
    std::printf("  %s\n", op.describe().c_str());
  }
  const char* repro_path = "explore_demo_repro.hssched";
  save_schedule(minimal.schedule, repro_path);
  std::printf("saved: %s\n\n", repro_path);

  std::printf("== 3. replay: the saved repro, in a fresh run ========\n");
  const Schedule loaded = load_schedule(repro_path);
  const RunOutcome replay = explorer.run_schedule(loaded);
  bool reproduced = false;
  for (const auto& violation : replay.violations) {
    if (violation.invariant == minimal.violation.invariant) {
      reproduced = true;
      std::printf("reproduced:\n  %s\n", violation.to_string().c_str());
    }
  }
  if (!reproduced) {
    std::printf("replay did NOT reproduce the violation\n");
    return 1;
  }
  std::printf("\nsame command, without the planted bug:\n");
  ExploreConfig fixed_config;
  const Explorer fixed(fixed_config);
  const RunOutcome clean = fixed.run_schedule(loaded);
  if (!clean.violations.empty()) {
    std::printf("expected a clean run after the fix\n");
    return 1;
  }
  std::printf("clean — the repro doubles as the regression test.\n");
  return 0;
}
