// Scenario: serving through a flaky network.
//
// PR 1's fault layer dealt with machines that die; the network model
// (cluster/netfaults.h) deals with a cluster whose machines are fine
// but whose *links* are not: dispatch messages vanish, feedback arrives
// late, and sometimes a switch partition makes half the farm look dead.
// This example walks the operational story on the paper's base cluster:
//
//  1. Baseline: Least-Load over a perfect network.
//  2. 10% message loss on both links — lost dispatches are detected
//     after the §4.2 feedback delay and retried, which saves the jobs
//     but not their response-time tail.
//  3. The same lossy links with hedged dispatch: stragglers are
//     re-issued to the least-loaded other machine, first completion
//     wins, and the loser is evicted. The tail comes back down and the
//     exactly-once identity still balances.
//  4. A 30-minute partition isolating the two fastest machines. The
//     heartbeat phi-accrual detector suspects them, the circuit breaker
//     routes around, and both rejoin on recovery — no crash was
//     injected and no job is lost, because a partition loses messages,
//     not jobs.
//
// See docs/FAULT_MODEL.md §8 for the underlying semantics.
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/config.h"
#include "cluster/sim.h"
#include "core/policy.h"
#include "dispatch/hedged.h"
#include "overload/circuit_breaker.h"

namespace {

hs::cluster::SimulationConfig base_config() {
  const auto cluster = hs::cluster::ClusterConfig::paper_base();
  hs::cluster::SimulationConfig config;
  config.speeds = cluster.speeds();
  config.rho = 0.7;
  config.sim_time = 2.0e5;
  config.warmup_frac = 0.1;
  config.seed = 20000829;
  // Memoryless sizes (paper mean kept): a hedge restarts its copy from
  // scratch, so with heavy-tailed sizes a straggler is usually just a
  // huge job. With exponential sizes a straggler signals unlucky
  // placement — the thing a second-choice copy fixes.
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 76.8;
  // A transit-lost dispatch re-routes through the fault layer's retry
  // path once the silence is noticed.
  config.faults.retry.max_attempts = 4;
  config.faults.retry.backoff_initial = 1.0;
  return config;
}

void print_row(const char* label, const hs::cluster::SimulationResult& r) {
  std::printf("%-22s RT %7.1f s   p99 %7.1f s   msgs lost %6llu   "
              "hedges %llu/%llu\n",
              label, r.mean_response_time, r.response_time_p99,
              static_cast<unsigned long long>(r.msgs_lost),
              static_cast<unsigned long long>(r.hedges_issued),
              static_cast<unsigned long long>(r.hedges_won));
}

void print_identity(const hs::cluster::SimulationResult& r) {
  std::printf("  exactly-once: %llu arrivals = %llu completed + %llu shed "
              "+ %llu dropped + %llu in flight\n",
              static_cast<unsigned long long>(r.total_arrivals),
              static_cast<unsigned long long>(r.total_completed),
              static_cast<unsigned long long>(r.total_shed),
              static_cast<unsigned long long>(r.total_dropped),
              static_cast<unsigned long long>(r.in_flight_at_end));
}

}  // namespace

int main() {
  auto config = base_config();
  std::printf("Cluster: %zu machines, utilization %.0f%%, exponential "
              "sizes (mean %.1f s)\n\n",
              config.speeds.size(), config.rho * 100,
              config.workload.fixed_or_mean_size);

  // 1. Perfect network. (p99 is collected on the asynchronous network
  // path, so the synchronous baseline reports it as 0.)
  auto perfect = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kLeastLoad, config.speeds, config.rho);
  print_row("perfect network", hs::cluster::run_simulation(config, *perfect));

  // 2. 10% loss on both links: retries save the jobs, not the tail.
  config.network.dispatch_link.loss = 0.10;
  config.network.report_link.loss = 0.10;
  auto lossy = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kLeastLoad, config.speeds, config.rho);
  const auto lost = hs::cluster::run_simulation(config, *lossy);
  print_row("10% loss, retries", lost);

  // 3. Same links, hedged dispatch: a job still unfinished after
  // `delay` seconds gets a second copy on the least-loaded other
  // machine; first completion wins and the loser is evicted.
  auto hedged = hs::core::make_hedged_dispatcher(
      hs::core::make_policy_dispatcher(hs::core::PolicyKind::kLeastLoad,
                                       config.speeds, config.rho),
      hs::dispatch::HedgingConfig{/*delay=*/600.0});
  const auto rescued = hs::cluster::run_simulation(config, *hedged);
  print_row("10% loss, hedged", rescued);
  print_identity(rescued);

  // 4. Partition: the two fastest machines (over half the cluster's
  // capacity) fall off the network for 30 simulated minutes.
  config.network.dispatch_link = {};
  config.network.report_link = {};
  config.network.heartbeat.interval = 10.0;
  config.network.heartbeat.phi_threshold = 4.0;
  const size_t n = config.speeds.size();
  config.network.partitions.push_back({0.5e5, 1800.0, {n - 2, n - 1}});
  auto guarded = hs::core::make_circuit_breaker_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho, {});
  const auto split = hs::cluster::run_simulation(config, *guarded);
  std::printf("\nPartition of the speed-10 and speed-12 machines, ORR + "
              "heartbeat + breaker:\n");
  print_row("30 min partition", split);
  std::printf("  detector suspicions: %llu   jobs dropped: %llu (a "
              "partition loses messages, not jobs)\n",
              static_cast<unsigned long long>(split.suspicions),
              static_cast<unsigned long long>(split.jobs_dropped));
  print_identity(split);

  std::printf("\nTakeaway: loss inflates the tail long before it dents "
              "goodput — retries make\nthe jobs whole, hedging makes "
              "their latency whole, and the heartbeat detector\nturns a "
              "partition from a blackout into a detour.\n");
  return 0;
}
