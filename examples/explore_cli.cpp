// explore_cli: drive the fault-space explorer from the command line.
//
// Modes (pick one):
//   --exhaustive          enumerate the documented bounded schedule space
//   --search              coverage-guided randomized exploration
//   --random              seed-soak baseline (empty schedule, varied seed)
//   --replay FILE         run one saved HSSCHED1 schedule and report
//   --shrink FILE         ddmin-reduce a violating schedule (see --out)
//
// Common knobs: --budget N (runs for --search/--random), --plant-bug
// (arm the test-only conservation defect), --stats (print the coverage
// tuple count — the comparison metric between search and random),
// --expect-violation (exit 0 only if a violation WAS found — for CI
// jobs that regress the find pipeline). The search seed comes from
// HS_EXPLORE_SEED (logged in "rerun with" form) so a red CI run replays
// locally by exporting the logged value.
//
// The find → shrink → replay walkthrough lives in examples/explore_demo.
#include <cstdio>
#include <string>

#include "explore/explorer.h"
#include "explore/invariants.h"
#include "explore/schedule.h"
#include "explore/shrink.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/env.h"

namespace {

using hs::explore::ExploreConfig;
using hs::explore::Explorer;
using hs::explore::RunOutcome;
using hs::explore::Schedule;
using hs::explore::SearchStats;

void print_schedule(const Schedule& schedule) {
  if (schedule.empty()) {
    std::printf("  (empty schedule — the natural run)\n");
    return;
  }
  for (const auto& op : schedule.ops) {
    std::printf("  %s\n", op.describe().c_str());
  }
}

void print_stats(const SearchStats& stats, bool show_stats) {
  std::printf("runs: %llu\n",
              static_cast<unsigned long long>(stats.runs));
  if (show_stats) {
    std::printf("coverage tuples: %zu\n", stats.coverage_tuples());
  }
  if (stats.found_violation) {
    std::printf("VIOLATION: %s\n", stats.violation.to_string().c_str());
    std::printf("seed: %llu\n",
                static_cast<unsigned long long>(stats.violating_seed));
    std::printf("schedule (%zu ops):\n", stats.counterexample.ops.size());
    print_schedule(stats.counterexample);
  } else {
    std::printf("no invariant violation found\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  hs::util::ArgParser parser(
      "Fault-space explorer: systematic schedule search, invariant "
      "checking, and repro replay");
  parser.add_flag("exhaustive", "enumerate the bounded-exhaustive space");
  parser.add_flag("search", "coverage-guided randomized exploration");
  parser.add_flag("random", "seed-soak baseline at the same run count");
  parser.add_option("replay", "", "run one saved HSSCHED1 schedule file");
  parser.add_option("shrink", "",
                    "ddmin-reduce a violating HSSCHED1 schedule file");
  parser.add_option("out", "repro.hssched",
                    "output path for --shrink's minimal schedule");
  parser.add_option("budget", "200",
                    "simulation runs for --search/--random");
  parser.add_flag("plant-bug",
                  "arm the test-only drop-leak conservation defect");
  parser.add_flag("stats", "print the coverage tuple count");
  parser.add_flag("expect-violation",
                  "exit 0 only if a violation was found (CI regression)");
  if (!parser.parse(argc, argv)) {
    return 0;
  }

  ExploreConfig config;
  config.plant_bug = parser.get_flag("plant-bug");
  const Explorer explorer(config);
  const auto budget = static_cast<uint64_t>(parser.get_long("budget"));
  const bool expect_violation = parser.get_flag("expect-violation");
  const bool show_stats = parser.get_flag("stats");

  bool found = false;
  if (parser.get_flag("exhaustive")) {
    std::printf("exhaustive space: %llu schedules\n",
                static_cast<unsigned long long>(
                    explorer.exhaustive_space_size()));
    const SearchStats stats = explorer.run_exhaustive();
    print_stats(stats, show_stats);
    found = stats.found_violation;
  } else if (parser.get_flag("search")) {
    const uint64_t seed = hs::util::seed_from_env("HS_EXPLORE_SEED", 1);
    const SearchStats stats = explorer.run_search(budget, seed);
    print_stats(stats, show_stats);
    found = stats.found_violation;
    if (found && !stats.counterexample.empty()) {
      const std::string out = parser.get_string("out");
      hs::explore::save_schedule(stats.counterexample, out);
      std::printf("counterexample saved: %s\n", out.c_str());
    }
  } else if (parser.get_flag("random")) {
    const uint64_t seed = hs::util::seed_from_env("HS_EXPLORE_SEED", 1);
    const SearchStats stats = explorer.run_random(budget, seed);
    print_stats(stats, show_stats);
    found = stats.found_violation;
  } else if (!parser.get_string("replay").empty()) {
    const Schedule schedule =
        hs::explore::load_schedule(parser.get_string("replay"));
    std::printf("replaying %zu ops:\n", schedule.ops.size());
    print_schedule(schedule);
    const RunOutcome outcome = explorer.run_schedule(schedule);
    std::printf("overrides applied: %llu\n",
                static_cast<unsigned long long>(outcome.overrides_applied));
    if (show_stats) {
      std::printf("coverage tuples: %zu\n", outcome.coverage.size());
    }
    for (const auto& violation : outcome.violations) {
      std::printf("VIOLATION: %s\n", violation.to_string().c_str());
    }
    found = !outcome.violations.empty();
    if (!found) {
      std::printf("run is clean\n");
    }
  } else if (!parser.get_string("shrink").empty()) {
    const Schedule schedule =
        hs::explore::load_schedule(parser.get_string("shrink"));
    const RunOutcome outcome = explorer.run_schedule(schedule);
    HS_CHECK(!outcome.violations.empty(),
             "--shrink: the input schedule does not violate any invariant");
    const auto result = hs::explore::shrink(
        explorer, schedule, outcome.violations.front().invariant);
    std::printf("shrunk %llu ops -> %zu ops in %llu runs\n",
                static_cast<unsigned long long>(result.initial_ops),
                result.schedule.ops.size(),
                static_cast<unsigned long long>(result.runs));
    std::printf("VIOLATION: %s\n", result.violation.to_string().c_str());
    print_schedule(result.schedule);
    const std::string out = parser.get_string("out");
    hs::explore::save_schedule(result.schedule, out);
    std::printf("minimal repro saved: %s\n", out.c_str());
    std::printf("replay with: explore_cli%s --replay %s\n",
                config.plant_bug ? " --plant-bug" : "", out.c_str());
    found = true;
  } else {
    std::fputs(parser.help_text().c_str(), stderr);
    return 2;
  }

  if (expect_violation) {
    return found ? 0 : 1;
  }
  return found ? 1 : 0;
}
