// Quickstart: schedule requests across heterogeneous machines with ORR.
//
// The 60-second tour of the library:
//   1. describe your machines by relative speed,
//   2. estimate the overall utilization,
//   3. construct an OrrScheduler and call route() per incoming job.
// The example then peeks one layer deeper: the allocation fractions the
// optimizer chose, what the analytic model predicts they buy over naive
// speed-proportional scheduling, and a quick simulation confirming it.
#include <cstdio>

#include "alloc/analytic_model.h"
#include "alloc/scheme.h"
#include "cluster/sim.h"
#include "core/orr.h"
#include "core/policy.h"

int main() {
  // A small shop: two old workstations, one mid-range box, one fast
  // server, running at about 60% overall utilization.
  const std::vector<double> speeds = {1.0, 1.0, 4.0, 8.0};
  const double utilization = 0.6;

  hs::core::OrrScheduler orr(speeds, utilization);

  std::printf("Machines (relative speeds):");
  for (double s : speeds) {
    std::printf(" %.1f", s);
  }
  std::printf("\nEstimated utilization: %.0f%%\n\n", utilization * 100);

  std::printf("Optimized allocation fractions (Algorithm 1):\n");
  for (size_t i = 0; i < speeds.size(); ++i) {
    std::printf("  machine %zu (speed %4.1f): %6.2f%% of jobs\n", i,
                speeds[i], orr.allocation()[i] * 100.0);
  }

  std::printf("\nRouting the first 16 requests: ");
  for (int i = 0; i < 16; ++i) {
    std::printf("%zu ", orr.route());
  }
  std::printf("\n(deterministic, smoothly interleaved — Algorithm 2)\n\n");

  // What does the optimization buy? Ask the analytic model (Eq. 3).
  hs::alloc::SystemParameters params;
  params.speeds = speeds;
  params.rho = utilization;
  params.mean_job_size = 1.0;  // relative units
  const auto weighted =
      hs::alloc::WeightedAllocation().compute(speeds, utilization);
  const double t_weighted =
      hs::alloc::predicted_mean_response_ratio(params, weighted);
  const double t_optimized =
      hs::alloc::predicted_mean_response_ratio(params, orr.allocation());
  std::printf("Predicted mean response ratio (lower is better):\n");
  std::printf("  speed-proportional allocation: %.3f\n", t_weighted);
  std::printf("  optimized allocation:          %.3f  (%.1f%% better)\n\n",
              t_optimized, (1.0 - t_optimized / t_weighted) * 100.0);

  // Confirm by simulation with the paper's realistic workload.
  hs::cluster::SimulationConfig config;
  config.speeds = speeds;
  config.rho = utilization;
  config.sim_time = 2.0e5;
  config.seed = 1;
  auto orr_dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, speeds, utilization);
  auto wran_dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kWRAN, speeds, utilization);
  const auto orr_sim = hs::cluster::run_simulation(config, *orr_dispatcher);
  const auto wran_sim = hs::cluster::run_simulation(config, *wran_dispatcher);
  std::printf("Simulated mean response ratio (bursty arrivals, "
              "heavy-tailed sizes, %llu jobs):\n",
              static_cast<unsigned long long>(orr_sim.completed_jobs));
  std::printf("  WRAN (naive):  %.3f\n", wran_sim.mean_response_ratio);
  std::printf("  ORR:           %.3f  (%.1f%% better)\n",
              orr_sim.mean_response_ratio,
              (1.0 - orr_sim.mean_response_ratio /
                         wran_sim.mean_response_ratio) *
                  100.0);
  return 0;
}
