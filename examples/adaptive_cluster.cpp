// Scenario: a cluster whose load drifts through the day.
//
// §5.4 of the paper shows ORR is robust to mild misestimation of the
// utilization but breaks down when load is badly underestimated. A real
// system's load is not constant — so this example runs a day-long drift
// (quiet night → busy day → evening peak) and compares:
//   * ORR tuned for the *average* day load (the paper's recommendation),
//   * ORR tuned for the quiet night (a stale estimate),
//   * AdaptiveORR, which learns the load online from arrival gaps.
// The drift is modeled by replaying three stitched traces at different
// rates through one simulation per policy.
#include <cstdio>
#include <vector>

#include "cluster/config.h"
#include "cluster/sim.h"
#include "core/adaptive.h"
#include "core/policy.h"
#include "workload/trace.h"

namespace {

// Build a day: 8 h at rho_night, 12 h at rho_day, 4 h at rho_peak.
hs::workload::JobTrace make_day_trace(const hs::cluster::ClusterConfig& cluster,
                                      double rho_night, double rho_day,
                                      double rho_peak) {
  const auto spec = hs::workload::WorkloadSpec::paper_default();
  const double total = cluster.total_speed();
  std::vector<hs::queueing::Job> jobs;
  double offset = 0.0;
  uint64_t id = 0;
  uint64_t seed = 1000;
  const struct {
    double rho;
    double hours;
  } phases[] = {{rho_night, 8.0}, {rho_day, 12.0}, {rho_peak, 4.0}};
  for (const auto& phase : phases) {
    const double horizon = phase.hours * 3600.0;
    const double lambda = spec.arrival_rate_for(phase.rho, total);
    const auto piece =
        hs::workload::JobTrace::generate(spec, lambda, horizon, seed++);
    for (const auto& job : piece.jobs()) {
      jobs.push_back(
          hs::queueing::Job{id++, offset + job.arrival_time, job.size});
    }
    offset += horizon;
  }
  return hs::workload::JobTrace(std::move(jobs));
}

}  // namespace

int main() {
  const auto cluster = hs::cluster::ClusterConfig::paper_base();
  const double rho_night = 0.25, rho_day = 0.65, rho_peak = 0.88;
  // Time-weighted average load over the day.
  const double rho_avg =
      (8.0 * rho_night + 12.0 * rho_day + 4.0 * rho_peak) / 24.0;

  std::printf("Cluster: %s\n", cluster.describe().c_str());
  std::printf("Load profile: night %.0f%% (8 h) -> day %.0f%% (12 h) -> "
              "peak %.0f%% (4 h); average %.0f%%\n\n",
              rho_night * 100, rho_day * 100, rho_peak * 100,
              rho_avg * 100);

  const auto trace =
      make_day_trace(cluster, rho_night, rho_day, rho_peak);
  std::printf("Generated %zu jobs across the day.\n\n", trace.size());

  hs::cluster::SimulationConfig config;
  config.speeds = cluster.speeds();
  config.rho = rho_avg;  // bookkeeping only; arrivals come from the trace
  config.sim_time = 24.0 * 3600.0;
  config.warmup_frac = 0.0;  // measure the whole day, drift is the point
  config.trace = &trace;
  config.seed = 5;

  auto run = [&](const char* label,
                 std::unique_ptr<hs::dispatch::Dispatcher> dispatcher) {
    const auto result = hs::cluster::run_simulation(config, *dispatcher);
    std::printf("  %-26s mean slowdown %7.3f   fairness %7.3f   "
                "p99 slowdown %7.2f\n",
                label, result.mean_response_ratio, result.fairness,
                result.response_ratio_p99);
    return result.mean_response_ratio;
  };

  std::printf("Day-long performance (identical arrivals for all):\n");
  run("ORR tuned for average",
      hs::core::make_policy_dispatcher(hs::core::PolicyKind::kORR,
                                       cluster.speeds(), rho_avg));
  run("ORR tuned for night (stale)",
      hs::core::make_policy_dispatcher(hs::core::PolicyKind::kORR,
                                       cluster.speeds(), rho_night));
  hs::core::AdaptiveOrrOptions options;
  options.mean_job_size = 76.8;
  options.time_constant = 3600.0;  // ~1 h memory
  options.recompute_every = 256;
  options.initial_rho = rho_night;  // starts with the same stale view
  run("AdaptiveORR (learns)",
      std::make_unique<hs::core::AdaptiveOrrDispatcher>(cluster.speeds(),
                                                        options));
  run("Dynamic least-load",
      hs::core::make_policy_dispatcher(hs::core::PolicyKind::kLeastLoad,
                                       cluster.speeds(), rho_avg));

  std::printf("\nTakeaway: a stale low estimate overloads the fast "
              "machines at peak (the Figure 6a\nfailure mode). The "
              "adaptive scheduler starts from the same stale estimate "
              "but re-learns\nthe load with ~1 h memory and stays close "
              "to the average-tuned ORR all day,\nwith zero feedback "
              "from the machines.\n");
  return 0;
}
