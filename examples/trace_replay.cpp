// Scenario: evaluating schedulers on a recorded workload trace.
//
// Replaying one fixed trace through every policy removes workload
// randomness from the comparison (common random numbers) — each policy
// sees byte-identical arrivals. The example generates a synthetic trace
// with the paper's burstiness profile (or loads one from CSV: rows of
// `arrival_time,size`), replays it through all five policies, and writes
// the trace for external analysis.
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "cluster/sim.h"
#include "core/policy.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  const auto cluster = hs::cluster::ClusterConfig::paper_base();
  const double rho = 0.7;

  hs::workload::JobTrace trace;
  if (argc > 1) {
    std::printf("Loading trace from %s ...\n", argv[1]);
    trace = hs::workload::JobTrace::load_csv(argv[1]);
  } else {
    // Synthetic stand-in for an unavailable production trace: the
    // paper's H2/Bounded-Pareto profile at the base configuration's
    // 70% load.
    const auto spec = hs::workload::WorkloadSpec::paper_default();
    const double lambda = spec.arrival_rate_for(rho, cluster.total_speed());
    trace = hs::workload::JobTrace::generate(spec, lambda, 3.0e5, 12345);
    trace.save_csv("trace_replay_workload.csv");
    std::printf("Generated synthetic trace (saved to "
                "trace_replay_workload.csv)\n");
  }

  std::printf("Trace: %zu jobs over %.0f s — mean inter-arrival %.2f s "
              "(CV %.2f), mean size %.1f s\n\n",
              trace.size(), trace.horizon(), trace.mean_interarrival(),
              trace.interarrival_cv(), trace.mean_size());

  hs::cluster::SimulationConfig config;
  config.speeds = cluster.speeds();
  config.rho = rho;  // used only for policy construction bookkeeping
  config.sim_time = trace.horizon();
  config.warmup_frac = 0.25;
  config.trace = &trace;
  config.seed = 1;

  std::printf("%-10s %16s %15s %10s %12s\n", "policy", "mean response",
              "mean slowdown", "fairness", "jobs");
  for (hs::core::PolicyKind policy : hs::core::all_policies()) {
    auto dispatcher =
        hs::core::make_policy_dispatcher(policy, cluster.speeds(), rho);
    const auto result = hs::cluster::run_simulation(config, *dispatcher);
    std::printf("%-10s %14.1f s %15.3f %10.2f %12llu\n",
                hs::core::policy_name(policy).c_str(),
                result.mean_response_time, result.mean_response_ratio,
                result.fairness,
                static_cast<unsigned long long>(result.completed_jobs));
  }

  std::printf("\nEvery policy saw the identical arrival sequence — the "
              "differences above are\npure scheduling effects, not "
              "workload noise.\n");
  return 0;
}
