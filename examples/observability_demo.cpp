// Scenario: watching a cluster run instead of reading its summary.
//
// Every other example reports aggregate numbers. This one attaches the
// observability subsystem (src/obs/) to a faulty heterogeneous cluster
// and produces two artifacts you can open:
//
//   * a Chrome trace-event JSON — load it at https://ui.perfetto.dev
//     (or chrome://tracing) to see every job as a span on its machine's
//     track, with instants for arrivals, dispatches, crashes,
//     recoveries, losses, retries and drops;
//   * a time-series CSV — per-machine queue depth, utilization, speed
//     and completions plus cluster-wide counters, sampled on a fixed
//     simulated-time grid, ready for any plotting tool.
//
// The same wiring works on every bench binary via --trace-out /
// --metrics-csv / --sample-interval (see bench/bench_common.h); this
// example keeps the run small so the trace stays pleasant to browse.
#include <cstdio>
#include <string>

#include "cluster/config.h"
#include "cluster/sim.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  hs::util::ArgParser parser(
      "Observability demo: trace + metrics for a faulty cluster run");
  parser.add_option("trace-out", "observability_trace.json",
                    "output path for the Chrome trace-event JSON");
  parser.add_option("metrics-csv", "observability_metrics.csv",
                    "output path for the time-series metrics CSV");
  parser.add_option("sample-interval", "30",
                    "simulated seconds between metric samples");
  parser.add_option("sim-time", "3600",
                    "simulated seconds (default: one busy hour)");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const std::string trace_path = parser.get_string("trace-out");
  const std::string metrics_path = parser.get_string("metrics-csv");

  const auto cluster = hs::cluster::ClusterConfig::paper_base();
  hs::cluster::SimulationConfig config;
  config.speeds = cluster.speeds();
  config.rho = 0.7;
  config.sim_time = parser.get_double("sim-time");
  config.warmup_frac = 0.0;  // observe the whole run, ramp-up included
  config.seed = 20000829;

  // A couple of crashes inside the hour make the trace interesting:
  // lost spans, retry instants and downtime gaps on the machine tracks.
  config.faults.processes.assign(config.speeds.size(), {1200.0, 120.0});
  config.faults.retry.max_attempts = 3;
  config.faults.retry.backoff_initial = 1.0;
  config.faults.retry.backoff_factor = 2.0;
  config.faults.retry.job_timeout = 300.0;

  hs::obs::TraceSink sink;
  hs::obs::MetricsRegistry registry;
  hs::obs::Observer observer;
  observer.trace = &sink;
  observer.metrics = &registry;
  observer.sample_interval = parser.get_double("sample-interval");
  config.observer = &observer;

  auto dispatcher = hs::core::make_fault_aware_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  const auto result = hs::cluster::run_simulation(config, *dispatcher);

  sink.write_chrome_trace(trace_path, config.speeds);
  registry.write_csv(metrics_path);

  std::printf("Simulated %.0f s on %zu machines (ORR, failure-aware, "
              "crashes on)\n\n",
              config.sim_time, config.speeds.size());
  std::printf("  completed %llu jobs   lost %llu   retried %llu   "
              "dropped %llu\n",
              static_cast<unsigned long long>(result.completed_jobs),
              static_cast<unsigned long long>(result.jobs_lost),
              static_cast<unsigned long long>(result.jobs_retried),
              static_cast<unsigned long long>(result.jobs_dropped));
  std::printf("  trace:   %zu events recorded (%llu overwritten) -> %s\n",
              sink.size(),
              static_cast<unsigned long long>(sink.overwritten()),
              trace_path.c_str());
  std::printf("  metrics: %zu samples x %zu series -> %s\n",
              registry.sample_count(), registry.metric_count(),
              metrics_path.c_str());
  std::printf("\nOpen the trace at https://ui.perfetto.dev — each machine "
              "is a track (named\nwith its speed), every job a span; "
              "crashes/losses/retries appear as instants.\n");
  return 0;
}
