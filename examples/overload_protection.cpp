// Scenario: riding out a flash crowd without melting down.
//
// The paper sizes its allocations for ρ < 1, but a real front-end farm
// sees ρ ≥ 1 during incidents: demand exceeds aggregate capacity and an
// unprotected cluster just grows its queues without bound. This example
// drives the paper's base configuration at 30% over capacity and walks
// through the overload-protection stack:
//
//  1. Unprotected ORR: every job is admitted, the backlog diverges, and
//     mean response time is dominated by queueing delay. (Its "goodput"
//     still counts the post-run drain of that backlog — the response
//     time is the divergence signal.)
//  2. Bounded queues only: a full queue rejects the dispatch and the
//     retry policy re-routes it; delay is bounded but the overflow
//     shows up as retry churn and dropped jobs.
//  3. The full stack: deadline-based admission sheds jobs whose
//     modelled response time would blow the SLO, circuit breakers trip
//     machines that keep rejecting, and a cluster-wide retry budget
//     caps the churn. The accounting identity shows where every
//     arrival went.
//
// See docs/FAULT_MODEL.md for rejection/shed/drop semantics.
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/config.h"
#include "cluster/sim.h"
#include "core/policy.h"

namespace {

void print_result(const char* label,
                  const hs::cluster::SimulationResult& result) {
  std::printf("%-14s goodput %6.3f job/s   mean RT %9.1f s   "
              "shed %6llu   rejected %6llu   retried %6llu   "
              "dropped %5llu\n",
              label, result.goodput, result.mean_response_time,
              static_cast<unsigned long long>(result.jobs_shed),
              static_cast<unsigned long long>(result.jobs_rejected),
              static_cast<unsigned long long>(result.jobs_retried),
              static_cast<unsigned long long>(result.jobs_dropped));
}

}  // namespace

int main() {
  const auto cluster = hs::cluster::ClusterConfig::paper_base();
  const double rho = 1.3;  // 30% more work than the cluster can do

  hs::cluster::SimulationConfig config;
  config.speeds = cluster.speeds();
  config.rho = rho;
  config.sim_time = 2.0e5;
  config.warmup_frac = 0.1;
  config.seed = 20000829;

  const double capacity =
      cluster.total_speed() / config.workload.mean_job_size();
  std::printf("Cluster: %zu machines (aggregate speed %.0f), offered load "
              "%.0f%% of capacity\n",
              config.speeds.size(), cluster.total_speed(), rho * 100);
  std::printf("Capacity ceiling: %.3f jobs/s completed with every cycle "
              "busy\n\n",
              capacity);

  // 1. The paper's ORR with unbounded queues: nothing is refused, so
  //    the overload accumulates as queueing delay.
  auto unprotected = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, rho);
  const auto melt = hs::cluster::run_simulation(config, *unprotected);
  print_result("unprotected", melt);

  // 2. Bounded queues only: the overflow becomes synchronous
  //    rejections, re-routed by the retry policy until it gives up.
  config.overload.queue_capacity = 64;
  auto bounded = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, rho);
  const auto churn = hs::cluster::run_simulation(config, *bounded);
  print_result("bounds only", churn);

  // 3. Full stack: admission control sheds jobs whose modelled response
  //    would exceed a 600 s SLO budget, circuit breakers route around
  //    machines that keep rejecting, and a retry budget caps retries at
  //    ~20% of admitted traffic.
  config.overload.admission = hs::overload::AdmissionKind::kDeadlineShed;
  config.overload.slo_budget = 600.0;
  config.overload.retry_budget.enabled = true;
  hs::overload::CircuitBreakerConfig breaker;
  auto breaking = hs::core::make_circuit_breaker_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, rho, breaker);
  const auto full = hs::cluster::run_simulation(config, *breaking);
  print_result("full stack", full);

  const auto* cb =
      dynamic_cast<const hs::overload::CircuitBreakerDispatcher*>(
          breaking.get());
  std::printf("\nBreaker activity: %llu trips, %llu survivor "
              "reallocations, %zu open at end\n",
              static_cast<unsigned long long>(cb->trips()),
              static_cast<unsigned long long>(cb->rebuilds()),
              cb->open_count());

  std::printf("\nWhere every arrival went (full stack):\n");
  std::printf("  arrivals %llu = completed %llu + shed %llu + dropped "
              "%llu + in-flight %llu\n",
              static_cast<unsigned long long>(full.total_arrivals),
              static_cast<unsigned long long>(full.total_completed),
              static_cast<unsigned long long>(full.total_shed),
              static_cast<unsigned long long>(full.total_dropped),
              static_cast<unsigned long long>(full.in_flight_at_end));

  std::printf("\nTakeaway: bounded queues alone turn the overflow into "
              "retry churn — tens of\nthousands of rejections and "
              "dropped jobs. Deadline-based admission sheds a\nsmall "
              "fraction of arrivals cleanly at the door instead, the "
              "breaker routes\naround machines that keep rejecting, and "
              "mean response time improves by an\norder of magnitude "
              "over the unprotected meltdown — while nearly every\n"
              "admitted job still completes.\n");
  return 0;
}
