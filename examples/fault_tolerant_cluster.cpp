// Scenario: keeping a heterogeneous farm serving through machine crashes.
//
// The deployments that motivate the paper — DNS round-robin, replicated
// web front-ends — run on real machines that fail. This example injects
// crash/recovery faults into the paper's base configuration and walks
// through the operational story:
//
//  1. A fault-oblivious ORR keeps routing into dead machines; the retry
//     policy saves some jobs and drops the rest.
//  2. The same ORR wrapped in the failure-aware decorator blacklists
//     machines as crash reports arrive and re-applies Algorithm 1 to the
//     survivors, recovering most of the lost goodput.
//  3. Availability accounting: downtime per machine, jobs lost/retried/
//     dropped, and what a retry costs in response time.
//
// See docs/FAULT_MODEL.md for the underlying semantics.
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/config.h"
#include "cluster/sim.h"
#include "core/policy.h"

namespace {

void print_result(const char* label,
                  const hs::cluster::SimulationResult& result) {
  std::printf("%-18s goodput %6.3f job/s   completed %7llu   "
              "lost %5llu   retried %5llu   dropped %4llu\n",
              label, result.goodput,
              static_cast<unsigned long long>(result.completed_jobs),
              static_cast<unsigned long long>(result.jobs_lost),
              static_cast<unsigned long long>(result.jobs_retried),
              static_cast<unsigned long long>(result.jobs_dropped));
}

}  // namespace

int main() {
  const auto cluster = hs::cluster::ClusterConfig::paper_base();
  const double rho = 0.6;

  hs::cluster::SimulationConfig config;
  config.speeds = cluster.speeds();
  config.rho = rho;
  config.sim_time = 2.0e5;
  config.warmup_frac = 0.1;
  config.seed = 20000829;

  // Every machine crashes about every 8 simulated hours and takes ~30
  // simulated minutes to repair; a job is tried at most 3 times with
  // 1 s, then 2 s of backoff, and abandoned after 10 minutes.
  config.faults.processes.assign(config.speeds.size(), {28800.0, 1800.0});
  config.faults.retry.max_attempts = 3;
  config.faults.retry.backoff_initial = 1.0;
  config.faults.retry.backoff_factor = 2.0;
  config.faults.retry.job_timeout = 600.0;

  std::printf("Cluster: %zu machines (aggregate speed %.0f), utilization "
              "%.0f%%\n",
              config.speeds.size(), cluster.total_speed(), rho * 100);
  std::printf("Faults: per-machine MTBF 8 h, MTTR 30 min; retry <=3 "
              "attempts, 10 min deadline\n\n");

  // 1. The paper's ORR, unaware that machines can die.
  auto oblivious = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, rho);
  const auto base = hs::cluster::run_simulation(config, *oblivious);
  print_result("ORR (oblivious)", base);

  // 2. The same policy behind the failure-aware decorator.
  auto aware = hs::core::make_fault_aware_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, rho);
  const auto improved = hs::cluster::run_simulation(config, *aware);
  print_result("ORR (aware)", improved);

  // 3. The dynamic yardstick, also failure-aware.
  auto least_load = hs::core::make_fault_aware_dispatcher(
      hs::core::PolicyKind::kLeastLoad, config.speeds, rho);
  const auto dynamic = hs::cluster::run_simulation(config, *least_load);
  print_result("LeastLoad (aware)", dynamic);

  std::printf("\nDowntime per machine (failure-aware ORR run):\n  ");
  for (size_t m = 0; m < improved.machine_downtime.size(); ++m) {
    std::printf("%s%.0fs", m == 0 ? "" : " ", improved.machine_downtime[m]);
  }
  std::printf("\n\nWhat a retry costs (mean response time by dispatch "
              "attempts, aware ORR):\n");
  for (size_t attempts = 0;
       attempts < improved.mean_response_by_attempts.size(); ++attempts) {
    if (improved.mean_response_by_attempts[attempts] <= 0.0) {
      continue;
    }
    std::printf("  %zu attempt%s: %8.1f s\n", attempts + 1,
                attempts == 0 ? " " : "s",
                improved.mean_response_by_attempts[attempts]);
  }

  std::printf("\nTakeaway: the static optimized allocation only needs a "
              "machine up/down signal\n(not load feedback) to ride "
              "through crashes — the decorator re-optimizes over\nthe "
              "survivors and drops almost nothing, closing most of the "
              "gap to the\ndynamic scheduler's availability.\n");
  return 0;
}
