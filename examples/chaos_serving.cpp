// Chaos drill: the fault-tolerant serving runtime walked through a
// scripted failure storm on a ManualClock, with every invariant checked
// as it goes.
//
// The scenario is the one the chaos test suite automates, narrated:
//
//   phase 1  steady state      — all backends healthy, traffic flows
//   phase 2  kill              — backend 2 stops releasing; its release
//                                deadlines expire, it turns Suspect, and
//                                the FaultAware stack routes around it
//   phase 3  brownout          — a second backend is rejected into
//                                Suspect; the healthy fraction drops
//                                below the floor and try_acquire starts
//                                shedding a configured share of traffic
//   phase 4  checkpoint        — the full serving state (counters, RNG,
//                                policy stack, health records) is
//                                snapshotted to disk, "the process
//                                crashes", and a fresh stack restores
//                                and resumes the session bit-identically
//   phase 5  revive            — the dead backends come back (late
//                                releases / accepted results), brownout
//                                disengages, goodput returns to 100%
//
// Every phase ends with invariant checks (conservation identity, no
// traffic on detected-dead backends, shed accounting); any violation
// exits nonzero, so CI can run this binary as an end-to-end drill.
// Deterministic by construction: ManualClock + fixed seed.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "alloc/allocation.h"
#include "dispatch/fault_aware.h"
#include "dispatch/random_dispatcher.h"
#include "overload/admission.h"
#include "serving/clock.h"
#include "serving/serving_dispatcher.h"
#include "serving/snapshot.h"
#include "util/check.h"

namespace {

using hs::serving::ManualClock;
using hs::serving::MachineHealth;
using hs::serving::ServingConfig;
using hs::serving::ServingDispatcher;
using hs::serving::ServingSnapshot;
using hs::serving::ServingStatus;

constexpr size_t kMachines = 4;
constexpr size_t kKilled = 2;
constexpr size_t kRejected = 0;

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("    %-58s %s\n", what, ok ? "ok" : "VIOLATED");
  if (!ok) {
    ++g_failures;
  }
}

std::unique_ptr<hs::dispatch::Dispatcher> make_stack() {
  auto rebuilder = [](const std::vector<bool>& available) {
    size_t up = 0;
    for (const bool a : available) {
      up += a ? 1 : 0;
    }
    std::vector<double> fractions(available.size(), 0.0);
    for (size_t i = 0; i < available.size(); ++i) {
      fractions[i] = available[i] ? 1.0 / static_cast<double>(up) : 0.0;
    }
    return std::make_unique<hs::dispatch::RandomDispatcher>(
        hs::alloc::Allocation(std::move(fractions)));
  };
  std::vector<bool> all_up(kMachines, true);
  return std::make_unique<hs::dispatch::FaultAwareDispatcher>(
      rebuilder(all_up), rebuilder);
}

ServingConfig make_config(ManualClock* clock,
                          hs::overload::AdmissionPolicy* shed) {
  ServingConfig config;
  config.seed = 2026;
  config.clock = clock;
  config.health.release_deadline = 1.0;
  config.health.timeout_threshold = 3;
  config.degradation.brownout_below = 0.6;  // engage under 3/4 healthy
  config.degradation.brownout_policy = shed;
  config.degradation.never_empty = true;
  return config;
}

struct PhaseStats {
  uint64_t issued = 0;
  uint64_t shed = 0;
  std::vector<uint64_t> picks = std::vector<uint64_t>(kMachines, 0);
};

/// Drive `steps` arrivals at 20 ms cadence; backends in `dead` hold
/// their requests forever (the "kill" primitive), everyone else
/// completes instantly.
PhaseStats drive(ServingDispatcher& serving, ManualClock& clock, int steps,
                 const std::vector<bool>& dead,
                 std::vector<size_t>* stranded) {
  PhaseStats stats;
  for (int i = 0; i < steps; ++i) {
    clock.advance(0.02);
    size_t machine = 0;
    const ServingStatus status = serving.try_acquire(1.0, machine);
    if (status == ServingStatus::kShed) {
      ++stats.shed;
      continue;
    }
    HS_CHECK(status == ServingStatus::kOk,
             "unexpected acquire status: " << to_string(status));
    ++stats.issued;
    ++stats.picks[machine];
    if (dead[machine]) {
      stranded->push_back(machine);
    } else {
      HS_CHECK(serving.release(machine, 1.0) == ServingStatus::kOk,
               "release refused for a routed request");
    }
  }
  return stats;
}

void print_phase(const char* title, const ServingDispatcher& serving,
                 const PhaseStats& stats) {
  std::printf("  %s\n", title);
  std::printf("    issued %llu  shed %llu  picks [",
              static_cast<unsigned long long>(stats.issued),
              static_cast<unsigned long long>(stats.shed));
  for (size_t m = 0; m < kMachines; ++m) {
    std::printf("%s%llu", m == 0 ? "" : " ",
                static_cast<unsigned long long>(stats.picks[m]));
  }
  std::printf("]  healthy %zu/%zu  timeouts %llu  in-flight %lld\n",
              serving.healthy_machines(), kMachines,
              static_cast<unsigned long long>(serving.timeouts()),
              static_cast<long long>(serving.in_flight()));
}

}  // namespace

int main() {
  std::printf("chaos drill: detection -> degradation -> checkpoint -> "
              "recovery\n\n");

  auto stack = make_stack();
  ManualClock clock;
  hs::overload::ProbabilisticShed shed(0.5);
  ServingDispatcher serving(*stack, make_config(&clock, &shed));

  std::vector<bool> dead(kMachines, false);
  std::vector<size_t> stranded;

  // Phase 1: steady state.
  PhaseStats p1 = drive(serving, clock, 200, dead, &stranded);
  print_phase("phase 1: steady state", serving, p1);
  check(serving.healthy_machines() == kMachines, "all backends healthy");
  check(p1.shed == 0, "no sheds while healthy");
  check(serving.in_flight() == 0, "conservation: nothing in flight");

  // Phase 2: kill backend 2 — it stops releasing.
  dead[kKilled] = true;
  PhaseStats p2 = drive(serving, clock, 400, dead, &stranded);
  serving.tick();
  print_phase("phase 2: backend 2 killed", serving, p2);
  check(serving.health()->state(kKilled) == MachineHealth::kSuspect,
        "killed backend detected Suspect");
  check(serving.timeouts() >= 3, "release deadlines expired");
  check(serving.in_flight() == static_cast<int64_t>(stranded.size()),
        "conservation: in-flight == stranded requests");
  // No pick may land on the dead backend once it is Suspect.
  PhaseStats p2b = drive(serving, clock, 200, dead, &stranded);
  check(p2b.picks[kKilled] == 0, "no traffic to detected-dead backend");

  // Phase 3: a second backend rejects into Suspect -> brownout.
  clock.advance(0.02);
  HS_CHECK(serving.report_result(kRejected, false) == ServingStatus::kOk,
           "report_result refused");
  HS_CHECK(serving.report_result(kRejected, false) == ServingStatus::kOk,
           "report_result refused");
  HS_CHECK(serving.report_result(kRejected, false) == ServingStatus::kOk,
           "report_result refused");
  PhaseStats p3 = drive(serving, clock, 400, dead, &stranded);
  print_phase("phase 3: brownout (2/4 healthy, shed p=0.5)", serving, p3);
  check((serving.degraded_modes() & 1u) != 0, "brownout engaged");
  check(p3.shed > 100 && p3.shed < 300, "sheds near the configured rate");
  check(p3.picks[kKilled] == 0 && p3.picks[kRejected] == 0,
        "degraded traffic stays on survivors");

  // Phase 4: checkpoint, "crash", restore into a fresh stack.
  const ServingSnapshot snap = serving.capture_snapshot();
  const std::string path = "/tmp/hs_chaos_serving.snap";
  hs::serving::save_snapshot_binary(path, snap);
  auto restored_stack = make_stack();
  ManualClock restored_clock(snap.session_time);
  ServingDispatcher restored(*restored_stack,
                             make_config(&restored_clock, &shed));
  restored.restore(hs::serving::load_snapshot_binary(path));
  std::printf("  phase 4: checkpoint -> crash -> restore (%s)\n",
              path.c_str());
  check(restored.acquired() == serving.acquired() &&
            restored.released() == serving.released(),
        "restored conservation counters match");
  check(restored.healthy_machines() == serving.healthy_machines(),
        "restored health state matches");
  bool identical = true;
  for (int i = 0; i < 300; ++i) {
    clock.advance(0.02);
    restored_clock.advance(0.02);
    size_t a = 0;
    size_t b = 0;
    const ServingStatus sa = serving.try_acquire(1.0, a);
    const ServingStatus sb = restored.try_acquire(1.0, b);
    identical = identical && sa == sb && (sa != ServingStatus::kOk || a == b);
    if (sa == ServingStatus::kOk && !dead[a]) {
      (void)serving.release(a, 1.0);
    }
    if (sb == ServingStatus::kOk && !dead[b]) {
      (void)restored.release(b, 1.0);
    }
  }
  check(identical, "restored session resumes bit-identically");

  // Phase 5: revive — stranded releases finally arrive, results accept.
  for (const size_t machine : stranded) {
    HS_CHECK(serving.release(machine, 1.0) == ServingStatus::kOk,
             "stranded release refused");
  }
  clock.advance(0.02);
  HS_CHECK(serving.report_result(kRejected, true) == ServingStatus::kOk,
           "report_result refused");
  dead[kKilled] = false;
  std::vector<size_t> none;
  PhaseStats p5 = drive(serving, clock, 200, dead, &none);
  print_phase("phase 5: revival", serving, p5);
  check(serving.healthy_machines() == kMachines, "all backends recovered");
  check(p5.shed == 0, "brownout disengaged, goodput back to 100%");
  check(serving.in_flight() == 0, "conservation: drill drains to zero");
  check(p5.picks[kKilled] > 0, "revived backend re-admitted to rotation");

  std::printf("\n%s (%d violation%s)\n",
              g_failures == 0 ? "drill passed" : "drill FAILED", g_failures,
              g_failures == 1 ? "" : "s");
  return g_failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
