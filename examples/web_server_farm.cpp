// Scenario: dispatching HTTP requests across a heterogeneous server farm.
//
// The paper's introduction points at exactly this use case: DNS-level and
// front-end request distribution over replicated servers of different
// capacities (Colajanni et al.; Dias et al.), which used simple weighted
// allocation. This example models a farm of mixed-generation servers
// handling bursty request traffic with heavy-tailed service demands, and
// compares the farm's latency profile under the four static policies and
// the dynamic least-load yardstick — including tail percentiles, which
// the paper's mean-based metrics do not show.
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/sim.h"
#include "core/policy.h"
#include "stats/histogram.h"

int main() {
  // The farm: 6 previous-generation servers, 3 current, 1 big box.
  std::vector<double> speeds;
  speeds.insert(speeds.end(), 6, 1.0);   // old
  speeds.insert(speeds.end(), 3, 3.0);   // current
  speeds.push_back(8.0);                 // flagship
  const double utilization = 0.65;

  std::printf("Server farm: 6x speed-1, 3x speed-3, 1x speed-8 "
              "(aggregate %.0f), target utilization %.0f%%\n",
              23.0, utilization * 100);
  std::printf("Traffic: bursty arrivals (CV=3), heavy-tailed request "
              "cost (Bounded Pareto)\n\n");

  hs::cluster::SimulationConfig config;
  config.speeds = speeds;
  config.rho = utilization;
  // Request-scale units: mean cost 77 ms instead of 77 s, so one hour of
  // simulated wall clock is ~700k requests at this utilization.
  config.workload.pareto_lower = 0.010;
  config.workload.pareto_upper = 21.6;
  config.sim_time = 3600.0;
  config.warmup_frac = 0.25;
  config.seed = 7;

  std::printf("%-10s %14s %14s %12s %12s %12s\n", "policy", "mean latency",
              "mean slowdown", "p95 slowdn", "p99 slowdn", "fairness");
  for (hs::core::PolicyKind policy : hs::core::all_policies()) {
    auto dispatcher = hs::core::make_policy_dispatcher(policy, speeds,
                                                       utilization);
    const auto result = hs::cluster::run_simulation(config, *dispatcher);
    std::printf("%-10s %11.4f s %14.2f %12.2f %12.2f %12.2f\n",
                hs::core::policy_name(policy).c_str(),
                result.mean_response_time, result.mean_response_ratio,
                result.response_ratio_p95, result.response_ratio_p99,
                result.fairness);
  }

  // A closer look at ORR's per-request slowdown distribution, collected
  // through the completion hook.
  std::printf("\nORR per-request slowdown distribution (log-scale):\n");
  hs::stats::Histogram histogram(0.1, 1000.0, 12,
                                 hs::stats::Histogram::Scale::kLog);
  hs::cluster::SimulationConfig hist_config = config;
  hist_config.completion_hook =
      [&histogram](const hs::queueing::Completion& completion,
                   bool measured) {
        if (measured) {
          histogram.add(completion.response_ratio());
        }
      };
  auto orr = hs::core::make_policy_dispatcher(hs::core::PolicyKind::kORR,
                                              speeds, utilization);
  (void)hs::cluster::run_simulation(hist_config, *orr);
  std::printf("%s", histogram.render(40).c_str());
  std::printf("\nTakeaway: ORR needs no load feedback from the servers "
              "(pure front-end state) yet\nholds both the mean and the "
              "tail close to the dynamic least-load scheduler.\n");
  return 0;
}
