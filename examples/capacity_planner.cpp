// Scenario: capacity planning with the analytic model.
//
// Because the optimized allocation has a closed form (§2.3), "what-if"
// questions answer instantly — no simulation required:
//   * How much load can this cluster take before mean slowdown exceeds a
//     target, under naive vs optimized scheduling?
//   * Is it better to add one fast machine or several slow ones?
// This example answers both for a concrete fleet, then spot-checks one
// answer by simulation.
#include <cstdio>
#include <vector>

#include "alloc/analytic_model.h"
#include "alloc/optimized.h"
#include "alloc/scheme.h"
#include "cluster/sim.h"
#include "core/policy.h"

namespace {

// Largest utilization whose predicted mean response ratio stays under
// `target`, for the given allocation scheme (bisection on ρ).
double max_sustainable_load(const std::vector<double>& speeds,
                            const hs::alloc::AllocationScheme& scheme,
                            double target_ratio) {
  hs::alloc::SystemParameters params;
  params.speeds = speeds;
  params.mean_job_size = 1.0;
  double lo = 0.01, hi = 0.999;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    params.rho = mid;
    const auto allocation = scheme.compute(speeds, mid);
    const double predicted =
        hs::alloc::predicted_mean_response_ratio(params, allocation);
    (predicted <= target_ratio ? lo : hi) = mid;
  }
  return lo;
}

void report_fleet(const char* label, const std::vector<double>& speeds,
                  double target_ratio) {
  const double weighted = max_sustainable_load(
      speeds, hs::alloc::WeightedAllocation{}, target_ratio);
  const double optimized = max_sustainable_load(
      speeds, hs::alloc::OptimizedAllocation{}, target_ratio);
  double total = 0.0;
  for (double s : speeds) {
    total += s;
  }
  std::printf("  %-28s Σs=%5.1f  weighted: %5.1f%%  optimized: %5.1f%%  "
              "(extra headroom: %+.1f%%)\n",
              label, total, weighted * 100.0, optimized * 100.0,
              (optimized - weighted) * 100.0);
}

}  // namespace

int main() {
  const double target_ratio = 3.0;  // jobs may take 3x their ideal time
  std::printf("Capacity planning: max sustainable utilization while the\n"
              "predicted mean response ratio stays below %.1f\n\n",
              target_ratio);

  const std::vector<double> current = {1.0, 1.0, 1.0, 1.0, 4.0};
  std::printf("Current fleet and upgrade options:\n");
  report_fleet("current {4x1, 1x4}", current, target_ratio);

  std::vector<double> plus_slow = current;
  plus_slow.insert(plus_slow.end(), 4, 1.0);
  report_fleet("add 4 slow machines (+4)", plus_slow, target_ratio);

  std::vector<double> plus_fast = current;
  plus_fast.push_back(4.0);
  report_fleet("add 1 fast machine (+4)", plus_fast, target_ratio);

  std::printf("\nSame aggregate capacity added — but the analytic model "
              "shows how it translates\ninto sustainable load under each "
              "scheduler before buying anything.\n\n");

  // Where does the optimized allocation send the work at moderate load?
  const double rho = 0.5;
  const auto allocation =
      hs::alloc::OptimizedAllocation().compute(plus_fast, rho);
  std::printf("Optimized allocation on the upgraded fleet at %.0f%% "
              "load:\n",
              rho * 100.0);
  for (size_t i = 0; i < plus_fast.size(); ++i) {
    std::printf("  machine %zu (speed %3.1f): %6.2f%%%s\n", i, plus_fast[i],
                allocation[i] * 100.0,
                allocation[i] == 0.0 ? "   <- parked (too slow to help)"
                                     : "");
  }

  // Spot-check the headroom claim by simulation at the weighted scheme's
  // predicted limit.
  const double check_rho = max_sustainable_load(
      plus_fast, hs::alloc::WeightedAllocation{}, target_ratio);
  hs::cluster::SimulationConfig config;
  config.speeds = plus_fast;
  config.rho = check_rho;
  config.sim_time = 2.0e5;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.seed = 11;
  auto wrr = hs::core::make_policy_dispatcher(hs::core::PolicyKind::kWRR,
                                              plus_fast, check_rho);
  auto orr = hs::core::make_policy_dispatcher(hs::core::PolicyKind::kORR,
                                              plus_fast, check_rho);
  const auto wrr_result = hs::cluster::run_simulation(config, *wrr);
  const auto orr_result = hs::cluster::run_simulation(config, *orr);
  std::printf("\nSimulation spot check at rho = %.1f%% (the weighted "
              "scheme's limit, M/M workload):\n",
              check_rho * 100.0);
  std::printf("  WRR mean response ratio: %.3f (target %.1f)\n",
              wrr_result.mean_response_ratio, target_ratio);
  std::printf("  ORR mean response ratio: %.3f (headroom to spare)\n",
              orr_result.mean_response_ratio);
  return 0;
}
