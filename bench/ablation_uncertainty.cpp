// Ablation A11 — parameter uncertainty: estimation error, load drift,
// stale feedback, and guarded adaptive re-allocation.
//
// The paper computes every static allocation from exact knowledge of
// the arrival rate λ and machine speeds sᵢ, and grants Least-Load
// near-instant load visibility. This ablation measures what each policy
// loses when those assumptions break, and how much of the loss the
// governed adaptive re-allocator (uncertainty/) wins back:
//
//   wrong    — the static allocation is built from the operator's
//              *believed* parameters (biased λ̂, noisy ŝᵢ) while the
//              simulation runs on the truth. ORR concentrates load on
//              too few machines and saturates them; WRR shrugs at λ̂
//              error (its split never looks at ρ) but mis-splits under
//              speed error.
//   oracle   — the allocation is built from the true parameters,
//              including the drift timeline's mean factor. The best any
//              static policy could have done.
//   adaptive — starts from the same wrong beliefs, re-estimates λ and
//              sᵢ from its own dispatch/departure stream, and re-solves
//              through the ReallocationGovernor's hysteresis.
//
// A third table degrades Least-Load's §4.2 per-departure reports to
// queue snapshots taken every Δ seconds and delivered d seconds late.
//
// Every run is audited against the accounting identity
//   arrivals = completed + shed + dropped + in-flight at end
// and the headline acceptance check is the ORR λ-misestimation cell:
// the adaptive dispatcher must recover at least half of the mean-RT
// gap between the wrong and oracle statics, with zero governor
// flap-freezes at the default hysteresis.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/config.h"
#include "uncertainty/adaptive.h"
#include "uncertainty/config.h"
#include "workload/spec.h"

namespace {

using hs::bench::BenchOptions;
using hs::cluster::ExperimentResult;
using hs::core::PolicyKind;
using hs::uncertainty::UncertaintyConfig;

enum class Variant { kWrong, kOracle, kAdaptive };

constexpr const char* variant_name(Variant variant) {
  switch (variant) {
    case Variant::kWrong:
      return "wrong";
    case Variant::kOracle:
      return "oracle";
    case Variant::kAdaptive:
      return "adaptive";
  }
  return "?";
}

/// Estimator knobs scaled to the horizon so the smoke scale (1e4 s)
/// converges inside its measurement window; the governor stays at the
/// default hysteresis — that is what the acceptance check pins.
hs::uncertainty::AdaptiveOptions adaptive_options_for(double sim_time) {
  hs::uncertainty::AdaptiveOptions options;
  options.mean_job_size =
      hs::workload::WorkloadSpec::paper_default().mean_job_size();
  options.time_constant = std::clamp(sim_time / 20.0, 250.0, 2000.0);
  options.reestimate_every = 128;
  return options;
}

ExperimentResult run_variant(const BenchOptions& options,
                             const std::vector<double>& speeds, double rho,
                             PolicyKind policy, Variant variant,
                             const UncertaintyConfig& uncertainty) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  config.simulation.uncertainty = uncertainty;
  switch (variant) {
    case Variant::kWrong: {
      const auto beliefs = config.believed_params();
      return hs::cluster::run_experiment(
          config, hs::core::policy_dispatcher_factory(policy, beliefs.speeds,
                                                      beliefs.rho));
    }
    case Variant::kOracle: {
      // The oracle knows the truth, drift included: it plans for the
      // time-averaged rate multiplier over the horizon.
      const double planned =
          rho * uncertainty.drift.mean_factor(config.simulation.sim_time);
      return hs::cluster::run_experiment(
          config,
          hs::core::policy_dispatcher_factory(policy, speeds, planned));
    }
    case Variant::kAdaptive: {
      const auto beliefs = config.believed_params();
      return hs::cluster::run_experiment(
          config, hs::core::adaptive_dispatcher_factory(
                      policy, beliefs.speeds, beliefs.rho,
                      adaptive_options_for(config.simulation.sim_time)));
    }
  }
  HS_CHECK(false, "unreachable variant");
  return {};
}

/// Whole-run conservation: every arrival is eventually completed, shed,
/// dropped, or still in flight when the drain finishes.
bool accounting_balances(const ExperimentResult& result) {
  for (const auto& rep : result.replications) {
    const uint64_t accounted = rep.total_completed + rep.total_shed +
                               rep.total_dropped + rep.in_flight_at_end;
    if (rep.total_arrivals != accounted) {
      std::cerr << "ACCOUNTING MISMATCH: arrivals " << rep.total_arrivals
                << " != completed " << rep.total_completed << " + shed "
                << rep.total_shed << " + dropped " << rep.total_dropped
                << " + in-flight " << rep.in_flight_at_end << "\n";
      return false;
    }
  }
  return true;
}

std::string adaptation_summary(const ExperimentResult& result) {
  return std::to_string(result.total_realloc_commits) + "/" +
         std::to_string(result.total_realloc_rejected) + "/" +
         std::to_string(result.total_governor_freezes);
}

/// Fraction of the wrong-vs-oracle mean-RT gap the adaptive run closed.
double recovered_fraction(double wrong_rt, double oracle_rt,
                          double adaptive_rt) {
  const double gap = wrong_rt - oracle_rt;
  if (gap <= 0.0) {
    return 0.0;
  }
  return (wrong_rt - adaptive_rt) / gap;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A11: parameter uncertainty — estimation error, arrival "
      "drift, stale load feedback, and governed adaptive re-allocation "
      "(base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7",
                    "base offered utilization (drift multiplies it)");
  parser.add_option("bias", "0.65",
                    "believed-over-true arrival-rate factor for the "
                    "lambda-misestimation cells (0.65 = 35% underestimate)");
  parser.add_option("speed-cv", "0.5",
                    "lognormal noise CV on believed per-machine speeds for "
                    "the speed-misestimation cells");
  parser.add_option("drift-peak", "1.3",
                    "ramp drift's final rate multiplier (ramps over the "
                    "middle half of the run)");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");
  const double bias = parser.get_double("bias");
  const double speed_cv = parser.get_double("speed-cv");
  const double drift_peak = parser.get_double("drift-peak");

  bench::print_header("Ablation A11", "Parameter uncertainty", options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  const auto& speeds = cluster.speeds();
  const std::vector<PolicyKind> policies = {PolicyKind::kORR,
                                            PolicyKind::kWRR};
  const std::vector<Variant> variants = {Variant::kWrong, Variant::kOracle,
                                         Variant::kAdaptive};

  // The ramp covers the middle half of the run regardless of scale, so
  // the smoke scale sees the same shape as the paper scale.
  UncertaintyConfig drift_only;
  drift_only.drift.kind = uncertainty::DriftKind::kRamp;
  drift_only.drift.ramp_start = 0.25 * options.sim_time;
  drift_only.drift.ramp_end = 0.75 * options.sim_time;
  drift_only.drift.start_factor = 1.0;
  drift_only.drift.end_factor = drift_peak;

  // ---- Experiment 1: λ mis-estimation under drift ----
  UncertaintyConfig lambda_unc = drift_only;
  lambda_unc.lambda_error.bias = bias;
  double orr_wrong_rt = 0.0;
  double orr_oracle_rt = 0.0;
  double orr_adaptive_rt = 0.0;
  uint64_t orr_adaptive_commits = 0;
  uint64_t adaptive_freezes = 0;
  bool balanced = true;
  util::TablePrinter lambda_table({"policy", "RT wrong", "RT oracle",
                                   "RT adaptive", "recovered",
                                   "commit/rej/freeze"});
  for (PolicyKind policy : policies) {
    lambda_table.begin_row();
    lambda_table.cell(core::policy_name(policy));
    double wrong_rt = 0.0;
    double oracle_rt = 0.0;
    double adaptive_rt = 0.0;
    std::string adapt_cell;
    for (Variant variant : variants) {
      const auto result =
          run_variant(options, speeds, rho, policy, variant, lambda_unc);
      balanced = balanced && accounting_balances(result);
      switch (variant) {
        case Variant::kWrong:
          wrong_rt = result.response_time.mean;
          break;
        case Variant::kOracle:
          oracle_rt = result.response_time.mean;
          break;
        case Variant::kAdaptive:
          adaptive_rt = result.response_time.mean;
          adapt_cell = adaptation_summary(result);
          adaptive_freezes += result.total_governor_freezes;
          if (policy == PolicyKind::kORR) {
            orr_adaptive_commits = result.total_realloc_commits;
          }
          break;
      }
    }
    if (policy == PolicyKind::kORR) {
      orr_wrong_rt = wrong_rt;
      orr_oracle_rt = oracle_rt;
      orr_adaptive_rt = adaptive_rt;
    }
    lambda_table.cell(wrong_rt, 1);
    lambda_table.cell(oracle_rt, 1);
    lambda_table.cell(adaptive_rt, 1);
    // WRR's split ignores ρ, so its wrong/oracle gap is pure replication
    // noise — a recovery fraction there would be meaningless.
    if (wrong_rt - oracle_rt > 0.05 * oracle_rt) {
      lambda_table.cell(
          recovered_fraction(wrong_rt, oracle_rt, adaptive_rt), 2);
    } else {
      lambda_table.cell("n/a (no gap)");
    }
    lambda_table.cell(adapt_cell);
  }
  bench::emit_table(
      options,
      "Mean response time (s) when the believed arrival rate is biased by " +
          std::to_string(bias) + " and the true rate ramps to " +
          std::to_string(drift_peak) +
          "x over the middle half of the run; recovered = fraction of the "
          "wrong-vs-oracle gap the adaptive run closed; commit/rej/freeze "
          "= governor decisions across replications:",
      lambda_table);

  // ---- Experiment 2: per-machine speed mis-estimation ----
  UncertaintyConfig speed_unc;
  speed_unc.speed_error.noise_cv = speed_cv;
  util::TablePrinter speed_table({"policy", "RT wrong", "RT oracle",
                                  "RT adaptive", "recovered",
                                  "commit/rej/freeze"});
  for (PolicyKind policy : policies) {
    speed_table.begin_row();
    speed_table.cell(core::policy_name(policy));
    double wrong_rt = 0.0;
    double oracle_rt = 0.0;
    double adaptive_rt = 0.0;
    std::string adapt_cell;
    for (Variant variant : variants) {
      const auto result =
          run_variant(options, speeds, rho, policy, variant, speed_unc);
      balanced = balanced && accounting_balances(result);
      switch (variant) {
        case Variant::kWrong:
          wrong_rt = result.response_time.mean;
          break;
        case Variant::kOracle:
          oracle_rt = result.response_time.mean;
          break;
        case Variant::kAdaptive:
          adaptive_rt = result.response_time.mean;
          adapt_cell = adaptation_summary(result);
          adaptive_freezes += result.total_governor_freezes;
          break;
      }
    }
    speed_table.cell(wrong_rt, 1);
    speed_table.cell(oracle_rt, 1);
    speed_table.cell(adaptive_rt, 1);
    if (wrong_rt - oracle_rt > 0.05 * oracle_rt) {
      speed_table.cell(
          recovered_fraction(wrong_rt, oracle_rt, adaptive_rt), 2);
    } else {
      speed_table.cell("n/a (no gap)");
    }
    speed_table.cell(adapt_cell);
  }
  bench::emit_table(
      options,
      "Mean response time (s) when each believed machine speed carries "
      "lognormal noise (CV " +
          std::to_string(speed_cv) +
          ", one draw per run from the dedicated belief stream); no "
          "drift:",
      speed_table);

  // ---- Experiment 3: Least-Load on stale load reports ----
  // Higher load than the main cells: herding on a stale view needs
  // queues deep enough to chase.
  const double rho_stale = 0.85;
  struct StaleCase {
    const char* label;
    double interval;
    double delay;
  };
  const std::vector<StaleCase> stale_cases = {
      {"per-departure (fresh)", 0.0, 0.0},
      {"snapshot every 10 s, +1 s", 10.0, 1.0},
      {"snapshot every 100 s, +10 s", 100.0, 10.0},
      {"snapshot every 500 s, +50 s", 500.0, 50.0},
  };
  util::TablePrinter stale_table(
      {"feedback", "mean RT", "RT ratio vs fresh"});
  double fresh_rt = 0.0;
  for (const auto& stale : stale_cases) {
    auto config = bench::paper_experiment(options, speeds, rho_stale);
    config.simulation.uncertainty.staleness.update_interval = stale.interval;
    config.simulation.uncertainty.staleness.report_delay = stale.delay;
    const auto result = hs::cluster::run_experiment(
        config, core::policy_dispatcher_factory(PolicyKind::kLeastLoad,
                                                speeds, rho_stale));
    balanced = balanced && accounting_balances(result);
    if (stale.interval == 0.0) {
      fresh_rt = result.response_time.mean;
    }
    stale_table.begin_row();
    stale_table.cell(stale.label);
    stale_table.cell(result.response_time.mean, 1);
    stale_table.cell(fresh_rt > 0.0 ? result.response_time.mean / fresh_rt
                                    : 0.0,
                     2);
  }
  bench::emit_table(
      options,
      "Least-Load at rho=" + std::to_string(rho_stale) +
          " as per-departure reports degrade to periodic delayed "
          "queue snapshots:",
      stale_table);

  // ---- Acceptance ----
  const double gap = orr_wrong_rt - orr_oracle_rt;
  const double recovered =
      recovered_fraction(orr_wrong_rt, orr_oracle_rt, orr_adaptive_rt);
  const bool gap_exists = gap > 0.05 * orr_oracle_rt;
  const bool recovered_enough = recovered >= 0.5;
  const bool adapted = orr_adaptive_commits >= 1;
  const bool no_freezes = adaptive_freezes == 0;
  bool pass =
      balanced && gap_exists && recovered_enough && adapted && no_freezes;
  std::cout << "Reproduction check:\n";
  std::cout << "  accounting identity (arrivals = completed + shed + "
            << "dropped + in-flight): "
            << (balanced ? "balanced" : "VIOLATED") << "\n";
  std::cout << "  ORR mean RT, wrong beliefs vs oracle: " << orr_wrong_rt
            << " vs " << orr_oracle_rt << " s "
            << (gap_exists ? "(mis-estimation hurts — expected)"
                           : "(no gap to recover — FAIL)")
            << "\n";
  std::cout << "  adaptive ORR recovered " << recovered * 100.0
            << "% of the gap (RT " << orr_adaptive_rt << " s, "
            << orr_adaptive_commits << " commits) "
            << (recovered_enough && adapted ? "(>= 50% — PASS)" : "(FAIL)")
            << "\n";
  std::cout << "  governor freezes across adaptive runs: " << adaptive_freezes
            << (no_freezes ? " (default hysteresis never flaps — PASS)"
                           : " (FAIL)")
            << "\n";
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
