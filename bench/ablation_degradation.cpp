// Ablation A7 — machine degradation and the limits of static scheduling.
//
// Static schedulers compute their allocation from the nominal machine
// speeds; when a machine degrades (thermal throttling, failed fan,
// partial failure) they keep routing by the stale speeds. This ablation
// degrades the fastest machine of the base configuration to a fraction
// of its speed halfway through the run and measures how each policy
// absorbs it. The arrival-rate-estimating AdaptiveORR cannot see a
// capacity loss (arrivals don't change), so it tracks plain ORR —
// quantifying exactly which failures require machine feedback (the
// dynamic yardstick) rather than better estimation.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "cluster/config.h"
#include "core/adaptive.h"

namespace {

hs::cluster::ExperimentResult run_with_degradation(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho, double degraded_speed,
    hs::core::PolicyKind policy) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  if (degraded_speed >= 0.0) {
    // Degrade the fastest machine (index of max speed) at mid-run.
    size_t fastest = 0;
    for (size_t i = 1; i < speeds.size(); ++i) {
      if (speeds[i] > speeds[fastest]) {
        fastest = i;
      }
    }
    config.simulation.speed_changes = {
        {config.simulation.sim_time * 0.5, fastest, degraded_speed}};
  }
  return hs::cluster::run_experiment(
      config, hs::core::policy_dispatcher_factory(policy, speeds, rho));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A7: mid-run degradation of the fastest machine — static "
      "policies vs the dynamic yardstick (base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.6", "overall system utilization (nominal)");
  parser.add_option("degraded-speeds", "12,6,3",
                    "post-degradation speeds of the (speed 12) machine");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");
  const auto degraded =
      bench::parse_double_list(parser.get_string("degraded-speeds"));

  bench::print_header("Ablation A7", "Mid-run machine degradation", options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  util::TablePrinter table({"speed 12 ->", "WRAN", "WRR", "ORR",
                            "LeastLoad"});
  for (double target : degraded) {
    table.begin_row();
    table.cell(target, 1);
    for (core::PolicyKind policy :
         {core::PolicyKind::kWRAN, core::PolicyKind::kWRR,
          core::PolicyKind::kORR, core::PolicyKind::kLeastLoad}) {
      const auto result = run_with_degradation(options, cluster.speeds(),
                                               rho, target, policy);
      table.cell(bench::format_ci(result.response_ratio, 3));
    }
  }
  bench::emit_table(options,
                    "Mean response ratio; the speed-12 machine drops to "
                    "the row's speed at t = sim_time/2 (first row = no "
                    "degradation):",
                    table);

  std::cout << "Reproduction check: static policies degrade steeply as "
               "the machine they load most heavily loses capacity (ORR "
               "concentrates the most work there, so it is hit hardest "
               "among the static policies); Dynamic Least-Load reroutes "
               "around the fault and degrades gracefully.\n";
  return 0;
}
