#include "bench_common.h"

#include <atomic>
#include <iostream>
#include <sstream>

namespace hs::bench {

namespace {

/// "trace.json" -> "trace.c3.json" for cell 3. Benches run one
/// experiment per (policy, cluster, rho) cell; without a distinct name
/// per cell every cell would overwrite the previous one's files.
std::string cell_path(const std::string& path, unsigned cell) {
  if (path.empty()) {
    return path;
  }
  const std::string suffix = ".c" + std::to_string(cell);
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

/// Cells are numbered in paper_experiment() call order, which is
/// deterministic within one bench binary (benches build their cells
/// sequentially on the main thread).
std::atomic<unsigned> g_next_cell{0};

}  // namespace

void BenchOptions::register_options(util::ArgParser& parser) {
  parser.add_option("sim-time", "1e6",
                    "simulated seconds per replication (paper: 4e6)");
  parser.add_option("reps", "5",
                    "independent replications per data point (paper: 10)");
  parser.add_option("warmup-frac", "0.25",
                    "fraction of each run discarded as warm-up");
  parser.add_option("seed", "20000829", "base RNG seed");
  parser.add_flag("paper-scale",
                  "use the paper's full scale: 4e6 s per run, 10 reps");
  parser.add_flag("csv", "also print each table as CSV");
  parser.add_option("trace-out", "",
                    "write per-replication Chrome trace JSON to this path");
  parser.add_option("metrics-csv", "",
                    "write per-replication time-series metrics CSV here");
  parser.add_option("sample-interval", "60",
                    "simulated seconds between metric samples");
}

BenchOptions BenchOptions::from_parser(const util::ArgParser& parser) {
  BenchOptions options;
  options.sim_time = parser.get_double("sim-time");
  options.reps = static_cast<unsigned>(parser.get_long("reps"));
  options.warmup_frac = parser.get_double("warmup-frac");
  options.seed = static_cast<uint64_t>(parser.get_long("seed"));
  options.csv = parser.get_flag("csv");
  options.trace_out = parser.get_string("trace-out");
  options.metrics_csv = parser.get_string("metrics-csv");
  options.sample_interval = parser.get_double("sample-interval");
  if (parser.get_flag("paper-scale")) {
    options.sim_time = 4.0e6;
    options.reps = 10;
    options.warmup_frac = 0.25;
  }
  return options;
}

cluster::ExperimentConfig paper_experiment(const BenchOptions& options,
                                           std::vector<double> speeds,
                                           double rho) {
  cluster::ExperimentConfig config;
  config.simulation.speeds = std::move(speeds);
  config.simulation.workload = workload::WorkloadSpec::paper_default();
  config.simulation.rho = rho;
  config.simulation.sim_time = options.sim_time;
  config.simulation.warmup_frac = options.warmup_frac;
  config.replications = options.reps;
  config.base_seed = options.seed;
  if (options.observability_enabled()) {
    const unsigned cell = g_next_cell.fetch_add(1);
    config.observability.trace_path = cell_path(options.trace_out, cell);
    config.observability.metrics_path = cell_path(options.metrics_csv, cell);
    config.observability.sample_interval = options.sample_interval;
  }
  return config;
}

cluster::ExperimentResult run_policy(const BenchOptions& options,
                                     core::PolicyKind policy,
                                     const std::vector<double>& speeds,
                                     double rho, double rho_estimate_factor) {
  const auto config = paper_experiment(options, speeds, rho);
  return cluster::run_experiment(
      config, core::policy_dispatcher_factory(policy, speeds, rho,
                                              rho_estimate_factor));
}

std::string format_ci(const stats::ConfidenceInterval& ci, int precision) {
  std::ostringstream oss;
  oss << util::format_double(ci.mean, precision) << " ±"
      << util::format_double(ci.half_width, precision);
  return oss.str();
}

void emit_table(const BenchOptions& options, const std::string& context,
                const util::TablePrinter& table) {
  if (!context.empty()) {
    std::cout << context << "\n";
  }
  table.print(std::cout);
  if (options.csv) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
  std::cout << "\n";
}

void print_header(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options) {
  std::cout << "=== " << experiment_id << ": " << title << " ===\n"
            << "Tang & Chanson, \"Optimizing Static Job Scheduling in a "
               "Network of Heterogeneous Computers\", ICPP 2000\n"
            << "sim-time=" << options.sim_time << " s, reps=" << options.reps
            << ", warmup=" << options.warmup_frac * 100 << "%, seed="
            << options.seed << "\n\n";
}

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> values;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t next = text.find(',', pos);
    if (next == std::string::npos) {
      next = text.size();
    }
    values.push_back(std::stod(text.substr(pos, next - pos)));
    pos = next + 1;
  }
  return values;
}

}  // namespace hs::bench
