// Shared scaffolding for the table/figure reproduction binaries.
//
// Every bench accepts the same scaling knobs:
//   --sim-time     simulated seconds per replication (default 1.0e6)
//   --reps         independent replications per data point (default 5)
//   --warmup-frac  fraction of each run discarded as warm-up (default 0.25)
//   --seed         base RNG seed
//   --paper-scale  use the paper's full parameters (4.0e6 s, 10 reps)
//   --csv          additionally print each table as CSV for plotting
// so results are statistically stable by default and exactly
// paper-faithful on request.
//
// Every bench also accepts the observability knobs (obs/):
//   --trace-out        write per-replication Chrome trace JSON here
//   --metrics-csv      write per-replication time-series metrics CSV here
//   --sample-interval  simulated seconds between metric samples (default 60)
// Both paths default to empty (observability fully off — the simulation
// hot path then takes a single never-taken branch per would-be event).
// A bench that runs several (policy, cluster, rho) cells derives one
// file per cell by inserting ".c<N>" before the extension.
#pragma once

#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "core/policy.h"
#include "util/cli.h"
#include "util/table.h"

namespace hs::bench {

struct BenchOptions {
  double sim_time = 1.0e6;
  double warmup_frac = 0.25;
  unsigned reps = 5;
  uint64_t seed = 20000829;
  bool csv = false;

  // Observability (empty path = that output off).
  std::string trace_out;
  std::string metrics_csv;
  double sample_interval = 60.0;

  [[nodiscard]] bool observability_enabled() const {
    return !trace_out.empty() || !metrics_csv.empty();
  }

  /// Registers the common options on a parser.
  static void register_options(util::ArgParser& parser);
  /// Reads the common options back; applies --paper-scale.
  static BenchOptions from_parser(const util::ArgParser& parser);
};

/// Experiment config with the paper's §4.1 workload on `speeds` at `rho`,
/// scaled per the options.
[[nodiscard]] cluster::ExperimentConfig paper_experiment(
    const BenchOptions& options, std::vector<double> speeds, double rho);

/// Run one (policy, cluster, rho) cell and return the aggregate result.
[[nodiscard]] cluster::ExperimentResult run_policy(
    const BenchOptions& options, core::PolicyKind policy,
    const std::vector<double>& speeds, double rho,
    double rho_estimate_factor = 1.0);

/// "12.34 ±0.56" formatting for a confidence interval.
[[nodiscard]] std::string format_ci(const stats::ConfidenceInterval& ci,
                                    int precision = 3);

/// Print the table, then CSV if requested. `context` is a one-line
/// description printed above the table.
void emit_table(const BenchOptions& options, const std::string& context,
                const util::TablePrinter& table);

/// Standard bench preamble: prints the header with experiment identity.
void print_header(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options);

/// Parse a comma-separated list of doubles ("0.3,0.5,0.7").
[[nodiscard]] std::vector<double> parse_double_list(const std::string& text);

}  // namespace hs::bench
