// Ablation A11 — network faults: lossy links, heavy-tailed transit
// delays, partitions, heartbeat failure detection, and hedged dispatch.
//
// The paper's dispatcher reaches its machines over an implicitly
// perfect network. This ablation turns on the PR 6 network fault model
// (cluster/netfaults.h) and measures what each robustness mechanism
// buys on the paper-base cluster at ρ = 0.7:
//
//   loss    — dispatch/report message loss {0, 5, 10}%, with and
//             without hedged dispatch, for Least-Load and ORR. A lost
//             dispatch copy is detected after the §4.2 feedback delay
//             and retried; a hedge re-issues stragglers to a
//             second-choice machine and the first completion wins.
//   tails   — hyperexponential transit-delay tails on both links
//             (occasional multi-second message delays reorder feedback
//             and dispatches).
//   split   — a timed partition cutting off the two fastest machines;
//             the heartbeat phi-accrual detector suspects them and the
//             circuit breaker reroutes — no crash, no job loss.
//
// Job sizes are exponential here (same 76.8 s mean as the paper's
// bounded-Pareto model, H2 arrivals kept): a hedge restarts its copy
// from scratch, so under α = 1 Pareto sizes a straggler is almost
// always just a very large job and duplicating it only doubles its
// work. With memoryless sizes a straggler signals unlucky *placement*
// (a slow or backlogged machine), which re-issuing to a second-choice
// machine genuinely fixes — the effect this ablation measures.
//
// Every cell is audited against the exactly-once accounting identity
//   arrivals = completed + shed + dropped + in-flight at end
// (duplicate deliveries deduped, hedge twins counted once), and the
// headline acceptance check is tail rescue: at ≥ 5% dispatch loss,
// hedging must improve Least-Load's p99 response time, pooled across
// the loss cells. ORR rows are shown for contrast but not gated: its
// pick_hedge is the next smooth-round-robin pick with no load
// visibility, so where the hedge lands is luck, not placement.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/config.h"

namespace {

using hs::bench::BenchOptions;
using hs::cluster::ExperimentResult;
using hs::cluster::NetworkConfig;
using hs::core::PolicyKind;
using hs::dispatch::HedgingConfig;

/// Whole-run exactly-once accounting: every arrival is eventually
/// completed, shed, dropped, or still in flight when the drain finishes.
bool accounting_balances(const ExperimentResult& result) {
  for (const auto& rep : result.replications) {
    const uint64_t accounted = rep.total_completed + rep.total_shed +
                               rep.total_dropped + rep.in_flight_at_end;
    if (rep.total_arrivals != accounted) {
      std::cerr << "ACCOUNTING MISMATCH: arrivals " << rep.total_arrivals
                << " != completed " << rep.total_completed << " + shed "
                << rep.total_shed << " + dropped " << rep.total_dropped
                << " + in-flight " << rep.in_flight_at_end << "\n";
      return false;
    }
  }
  return true;
}

ExperimentResult run_network(const BenchOptions& options,
                             const std::vector<double>& speeds, double rho,
                             PolicyKind policy, const NetworkConfig& network,
                             double hedge_delay) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  config.simulation.network = network;
  // Memoryless sizes isolate the placement signal hedging acts on (see
  // the header comment); the paper's mean job size is kept.
  config.simulation.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.simulation.workload.fixed_or_mean_size = 76.8;
  // Transit-lost copies re-route through the fault layer's retry path.
  config.simulation.faults.retry.max_attempts = 4;
  config.simulation.faults.retry.backoff_initial = 1.0;
  auto factory =
      hedge_delay > 0.0
          ? hs::core::hedged_dispatcher_factory(policy, speeds, rho,
                                                HedgingConfig{hedge_delay})
          : hs::core::policy_dispatcher_factory(policy, speeds, rho);
  return hs::cluster::run_experiment(config, factory);
}

std::string hedge_summary(const ExperimentResult& result) {
  return std::to_string(result.total_hedges_issued) + "/" +
         std::to_string(result.total_hedges_won);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A11: network faults — loss, delay tails, partitions, "
      "heartbeat detection, hedged dispatch (base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "system utilization");
  parser.add_option("loss", "0,0.05,0.1",
                    "dispatch/report loss probabilities to sweep");
  parser.add_option("hedge-delay", "600",
                    "seconds before a straggler is hedged to a "
                    "second-choice machine (0 disables hedging rows)");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");
  const auto losses = bench::parse_double_list(parser.get_string("loss"));
  const double hedge_delay = parser.get_double("hedge-delay");

  bench::print_header("Ablation A11", "Network fault model", options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  const auto& speeds = cluster.speeds();
  bool balanced = true;

  // ---- Experiment 1: loss × hedging for Least-Load and ORR ----
  util::TablePrinter table({"loss", "policy", "RT plain", "RT hedged",
                            "p99 plain", "p99 hedged", "hedges iss/won",
                            "msgs lost"});
  struct Tail {
    double plain = 0.0;
    double hedged = 0.0;
  };
  std::vector<Tail> tails_at_loss;  // for the acceptance check, loss>=5%
  for (double loss : losses) {
    for (PolicyKind policy : {PolicyKind::kLeastLoad, PolicyKind::kORR}) {
      NetworkConfig network;
      network.dispatch_link.loss = loss;
      network.report_link.loss = loss;
      const auto plain =
          run_network(options, speeds, rho, policy, network, 0.0);
      const auto hedged =
          run_network(options, speeds, rho, policy, network, hedge_delay);
      balanced = balanced && accounting_balances(plain) &&
                 accounting_balances(hedged);
      // Only Least-Load cells feed the acceptance check: its pick_hedge
      // places the second copy on the least-loaded other machine, so the
      // p99 rescue is a property of the mechanism, not of where a blind
      // round-robin pick happened to land (see header comment).
      if (loss >= 0.05 && hedge_delay > 0.0 &&
          policy == PolicyKind::kLeastLoad) {
        tails_at_loss.push_back(
            {plain.response_time_p99.mean, hedged.response_time_p99.mean});
      }
      table.begin_row();
      table.cell(loss, 2);
      table.cell(core::policy_name(policy));
      table.cell(bench::format_ci(plain.response_time, 1));
      table.cell(bench::format_ci(hedged.response_time, 1));
      // p99 is only collected on network-path runs; at loss 0 the plain
      // cell runs the synchronous path and reports 0.
      table.cell(plain.response_time_p99.mean, 0);
      table.cell(hedged.response_time_p99.mean, 0);
      table.cell(hedge_summary(hedged));
      table.cell(static_cast<double>(plain.total_msgs_lost), 0);
    }
  }
  bench::emit_table(
      options,
      "Mean and p99 response time (s) with and without hedged dispatch "
      "(first completion wins, losing copy evicted); hedges iss/won and "
      "msgs lost summed across replications:",
      table);

  // ---- Experiment 2: transit-delay tails ----
  util::TablePrinter tail_table(
      {"delay mean", "tail", "RT plain", "RT hedged", "p99 plain",
       "p99 hedged", "dup msgs"});
  struct TailCase {
    double mean;
    double prob;
    double factor;
  };
  for (const TailCase& t : {TailCase{0.5, 0.0, 1.0},
                            TailCase{0.5, 0.05, 50.0},
                            TailCase{0.5, 0.1, 100.0}}) {
    NetworkConfig network;
    network.dispatch_link.delay_mean = t.mean;
    network.dispatch_link.tail_prob = t.prob;
    network.dispatch_link.tail_factor = t.factor;
    network.dispatch_link.duplicate = 0.01;
    network.report_link = network.dispatch_link;
    const auto plain = run_network(options, speeds, rho,
                                   PolicyKind::kLeastLoad, network, 0.0);
    const auto hedged = run_network(options, speeds, rho,
                                    PolicyKind::kLeastLoad, network,
                                    hedge_delay);
    balanced = balanced && accounting_balances(plain) &&
               accounting_balances(hedged);
    tail_table.begin_row();
    tail_table.cell(t.mean, 2);
    tail_table.cell(std::to_string(t.prob) + "x" +
                    std::to_string(static_cast<int>(t.factor)));
    tail_table.cell(bench::format_ci(plain.response_time, 1));
    tail_table.cell(bench::format_ci(hedged.response_time, 1));
    tail_table.cell(plain.response_time_p99.mean, 0);
    tail_table.cell(hedged.response_time_p99.mean, 0);
    tail_table.cell(static_cast<double>(plain.total_msgs_duplicated), 0);
  }
  bench::emit_table(
      options,
      "Hyperexponential transit-delay tails on both links (Least-Load, "
      "1% duplication): delayed feedback and reordered dispatches:",
      tail_table);

  // ---- Experiment 3: partition + heartbeat detector + breaker ----
  // The two fastest machines (speed 10 and 12 — over half the cluster's
  // capacity) fall off the network for 10% of the run. The detector
  // suspects them, the breaker reroutes, and they rejoin on recovery.
  // No crash is injected: a partition loses messages, not jobs.
  util::TablePrinter split_table({"scenario", "goodput", "RT", "p99",
                                  "suspicions", "msgs lost"});
  uint64_t split_suspicions = 0;
  {
    NetworkConfig network;
    network.heartbeat.interval = 10.0;
    network.heartbeat.phi_threshold = 4.0;
    const size_t n = speeds.size();
    network.partitions.push_back(
        {0.25 * options.sim_time, 0.10 * options.sim_time, {n - 2, n - 1}});
    for (bool split : {false, true}) {
      NetworkConfig net = network;
      if (!split) {
        net.partitions.clear();
      }
      auto config = bench::paper_experiment(options, speeds, rho);
      config.simulation.network = net;
      config.simulation.workload.size_kind =
          workload::SizeKind::kExponential;
      config.simulation.workload.fixed_or_mean_size = 76.8;
      config.simulation.faults.retry.max_attempts = 4;
      config.simulation.faults.retry.backoff_initial = 1.0;
      const auto result = hs::cluster::run_experiment(
          config, core::circuit_breaker_dispatcher_factory(
                      PolicyKind::kORR, speeds, rho, {}));
      balanced = balanced && accounting_balances(result);
      if (split) {
        split_suspicions = result.total_suspicions;
      }
      split_table.begin_row();
      split_table.cell(split ? "partition 10% of run" : "no partition");
      split_table.cell(bench::format_ci(result.goodput, 3));
      split_table.cell(bench::format_ci(result.response_time, 1));
      split_table.cell(result.response_time_p99.mean, 0);
      split_table.cell(static_cast<double>(result.total_suspicions), 0);
      split_table.cell(static_cast<double>(result.total_msgs_lost), 0);
    }
  }
  bench::emit_table(
      options,
      "ORR + circuit breaker with a heartbeat detector; the partition "
      "isolates the speed-10 and speed-12 machines for 10% of the run:",
      split_table);

  // ---- Acceptance ----
  bool pass = balanced;
  std::cout << "Reproduction check:\n";
  std::cout << "  exactly-once identity (arrivals = completed + shed + "
            << "dropped + in-flight): "
            << (balanced ? "balanced" : "VIOLATED") << "\n";
  if (!tails_at_loss.empty()) {
    // Pooled over the Least-Load loss cells: per-cell p99 at smoke
    // scale (--sim-time 1e4 --reps 2) sits on ~200 tail samples and
    // single cells jitter either way. Short runs get a 10% noise
    // allowance; at >= 1e5 simulated seconds the improvement must be
    // strict (it is comfortably so — typically 15-25%).
    double plain_sum = 0.0;
    double hedged_sum = 0.0;
    for (const auto& t : tails_at_loss) {
      plain_sum += t.plain;
      hedged_sum += t.hedged;
    }
    const double bound = options.sim_time >= 1e5 ? 1.0 : 1.10;
    const bool tail_rescued = hedged_sum < bound * plain_sum;
    std::cout << "  hedging improves Least-Load p99 at >=5% loss "
              << "(pooled, bound " << bound << "x): "
              << hedged_sum / plain_sum << "x "
              << (tail_rescued ? "(PASS)" : "(FAIL)") << "\n";
    pass = pass && tail_rescued;
  } else {
    std::cout << "  (no loss >= 5% cells with hedging — p99 check "
              << "skipped)\n";
  }
  const bool detector_fired = split_suspicions >= 2;
  std::cout << "  partition suspected by the heartbeat detector: "
            << split_suspicions << " suspicions "
            << (detector_fired ? "(PASS)" : "(FAIL)") << "\n";
  pass = pass && detector_fired;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
