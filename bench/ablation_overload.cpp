// Ablation A9 — overload protection: bounded queues, admission
// control, circuit breaking, and retry budgets.
//
// The paper's model assumes ρ < 1; real front-ends see ρ ≥ 1 during
// incidents and flash crowds. This ablation drives the paper-base
// cluster into overload (ρ up to 1.5) and compares four protection
// levels for every policy:
//
//   none    — unbounded queues, admit everything (the seed behaviour).
//             Beyond ρ = 1 the backlog and response time diverge.
//   bounds  — bounded per-machine queues: a full queue rejects the
//             dispatch synchronously and the retry policy re-routes it.
//   shed    — bounds + deadline admission control: first attempts whose
//             modelled response time (§2.3 analytic baseline + the
//             instantaneous queue backlog) would blow the SLO budget
//             are shed at the door, converting churn into clean
//             refusals.
//   full    — shed + circuit-breaking dispatch (trip on consecutive
//             rejections, reallocate over closed-breaker survivors)
//             + a cluster-wide retry-budget token bucket.
//
// Every run is audited against the whole-run accounting identity
//   arrivals = completed + shed + dropped + in-flight at end
// and the headline acceptance check is at ρ = 1.5: unprotected ORR's
// response time blows up (the "goodput" column still counts the
// post-run drain of its divergent backlog — response time is the
// honest signal) while fully protected ORR keeps goodput within 10%
// of the cluster's capacity ceiling.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/config.h"

namespace {

using hs::bench::BenchOptions;
using hs::cluster::ExperimentResult;
using hs::core::PolicyKind;
using hs::overload::AdmissionKind;
using hs::overload::OverloadConfig;

enum class Level { kNone, kBounds, kShed, kFull };

constexpr const char* level_name(Level level) {
  switch (level) {
    case Level::kNone:
      return "none";
    case Level::kBounds:
      return "bounds";
    case Level::kShed:
      return "shed";
    case Level::kFull:
      return "full";
  }
  return "?";
}

struct OverloadKnobs {
  size_t queue_capacity = 64;
  double slo_budget = 600.0;
  hs::overload::CircuitBreakerConfig breaker;
};

OverloadConfig overload_for(Level level, const OverloadKnobs& knobs) {
  OverloadConfig config;
  if (level == Level::kNone) {
    return config;
  }
  config.queue_capacity = knobs.queue_capacity;
  if (level == Level::kShed || level == Level::kFull) {
    config.admission = AdmissionKind::kDeadlineShed;
    config.slo_budget = knobs.slo_budget;
  }
  if (level == Level::kFull) {
    config.retry_budget.enabled = true;
  }
  return config;
}

ExperimentResult run_level(const BenchOptions& options,
                           const std::vector<double>& speeds, double rho,
                           PolicyKind policy, Level level,
                           const OverloadKnobs& knobs) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  config.simulation.overload = overload_for(level, knobs);
  auto factory =
      level == Level::kFull
          ? hs::core::circuit_breaker_dispatcher_factory(policy, speeds, rho,
                                                         knobs.breaker)
          : hs::core::policy_dispatcher_factory(policy, speeds, rho);
  return hs::cluster::run_experiment(config, factory);
}

/// Whole-run conservation: every arrival is eventually completed, shed,
/// dropped, or still in flight when the drain finishes.
bool accounting_balances(const ExperimentResult& result) {
  for (const auto& rep : result.replications) {
    const uint64_t accounted = rep.total_completed + rep.total_shed +
                               rep.total_dropped + rep.in_flight_at_end;
    if (rep.total_arrivals != accounted) {
      std::cerr << "ACCOUNTING MISMATCH: arrivals " << rep.total_arrivals
                << " != completed " << rep.total_completed << " + shed "
                << rep.total_shed << " + dropped " << rep.total_dropped
                << " + in-flight " << rep.in_flight_at_end << "\n";
      return false;
    }
  }
  return true;
}

std::string shed_summary(const ExperimentResult& result) {
  return std::to_string(result.total_jobs_shed) + "/" +
         std::to_string(result.total_jobs_rejected) + "/" +
         std::to_string(result.total_jobs_dropped);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A9: overload protection — bounded queues, admission "
      "shedding, circuit breaking, retry budgets (base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.9,1.0,1.2,1.5",
                    "offered utilizations to sweep (>= 1 is overload)");
  parser.add_option("queue-cap", "64", "bounded per-machine queue capacity");
  parser.add_option("slo", "600",
                    "admission control sheds first attempts whose modelled "
                    "response time exceeds this SLO budget, seconds");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const auto rhos = bench::parse_double_list(parser.get_string("rho"));
  OverloadKnobs knobs;
  knobs.queue_capacity =
      static_cast<size_t>(parser.get_double("queue-cap"));
  knobs.slo_budget = parser.get_double("slo");

  bench::print_header("Ablation A9", "Overload protection", options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  const auto& speeds = cluster.speeds();
  const double mean_size =
      workload::WorkloadSpec::paper_default().mean_job_size();
  // The most the cluster can complete per second with every cycle busy.
  const double capacity = cluster.total_speed() / mean_size;

  const std::vector<PolicyKind> policies = {
      PolicyKind::kWRAN, PolicyKind::kORAN, PolicyKind::kWRR,
      PolicyKind::kORR, PolicyKind::kLeastLoad};
  const std::vector<Level> levels = {Level::kNone, Level::kBounds,
                                     Level::kShed, Level::kFull};

  // ---- Experiment 1: ρ × protection-level matrix ----
  util::TablePrinter table({"rho", "policy", "goodput (none)",
                            "goodput (bounds)", "goodput (shed)",
                            "goodput (full)", "RT none", "RT full",
                            "shed/rej/drop (full)"});
  bool balanced = true;
  double orr_unprotected_rt = 0.0;
  double orr_full_rt = 0.0;
  double orr_full_goodput = 0.0;
  for (double rho : rhos) {
    for (PolicyKind policy : policies) {
      table.begin_row();
      table.cell(rho, 2);
      table.cell(core::policy_name(policy));
      double rt_none = 0.0;
      double rt_full = 0.0;
      std::string shed_cell;
      for (Level level : levels) {
        const auto result =
            run_level(options, speeds, rho, policy, level, knobs);
        balanced = balanced && accounting_balances(result);
        table.cell(bench::format_ci(result.goodput, 3));
        if (level == Level::kNone) {
          rt_none = result.response_time.mean;
        }
        if (level == Level::kFull) {
          rt_full = result.response_time.mean;
          shed_cell = shed_summary(result);
          if (policy == PolicyKind::kORR && rho >= 1.5) {
            orr_unprotected_rt = rt_none;
            orr_full_rt = rt_full;
            orr_full_goodput = result.goodput.mean;
          }
        }
      }
      table.cell(rt_none, 0);
      table.cell(rt_full, 0);
      table.cell(shed_cell);
    }
  }
  bench::emit_table(
      options,
      "Goodput (jobs/s) by protection level; RT = mean response time of "
      "completed jobs (s); shed/rej/drop = admission sheds, bounded-queue "
      "rejections, retry-exhausted drops across replications:",
      table);
  std::cout << "Cluster capacity ceiling: " << capacity
            << " jobs/s (aggregate speed " << cluster.total_speed()
            << " / mean job size " << mean_size << ")\n\n";

  // ---- Experiment 2: admission policies under the breaker at ρ=1.2 ----
  const double rho_admit = 1.2;
  struct AdmissionCase {
    const char* label;
    AdmissionKind kind;
    size_t bound;
    double prob;
  };
  const std::vector<AdmissionCase> cases = {
      {"queue-bound 48", AdmissionKind::kQueueBoundShed, 48, 1.0},
      {"deadline p=1.0", AdmissionKind::kDeadlineShed, 0, 1.0},
      {"deadline p=0.5", AdmissionKind::kDeadlineShed, 0, 0.5},
  };
  util::TablePrinter admit_table(
      {"admission", "goodput", "mean RT", "shed", "rejected", "dropped"});
  for (const auto& admission : cases) {
    auto config = bench::paper_experiment(options, speeds, rho_admit);
    config.simulation.overload = overload_for(Level::kFull, knobs);
    config.simulation.overload.admission = admission.kind;
    if (admission.kind == AdmissionKind::kQueueBoundShed) {
      config.simulation.overload.admission_queue_bound = admission.bound;
    } else {
      config.simulation.overload.shed_probability = admission.prob;
    }
    const auto result = hs::cluster::run_experiment(
        config, core::circuit_breaker_dispatcher_factory(
                    PolicyKind::kORR, speeds, rho_admit, knobs.breaker));
    balanced = balanced && accounting_balances(result);
    admit_table.begin_row();
    admit_table.cell(admission.label);
    admit_table.cell(bench::format_ci(result.goodput, 3));
    admit_table.cell(result.response_time.mean, 1);
    admit_table.cell(static_cast<double>(result.total_jobs_shed), 0);
    admit_table.cell(static_cast<double>(result.total_jobs_rejected), 0);
    admit_table.cell(static_cast<double>(result.total_jobs_dropped), 0);
  }
  bench::emit_table(
      options,
      "Admission policies at rho=1.2 (ORR + breaker + retry budget); "
      "queue-bound sheds beyond a fixed queue depth, the deadline shedder "
      "refuses jobs whose modelled response exceeds the SLO budget with "
      "the given probability:",
      admit_table);

  // ---- Acceptance ----
  const bool swept_overload = orr_full_rt > 0.0;
  bool pass = balanced;
  std::cout << "Reproduction check:\n";
  std::cout << "  accounting identity (arrivals = completed + shed + "
            << "dropped + in-flight): "
            << (balanced ? "balanced" : "VIOLATED") << "\n";
  if (swept_overload) {
    // Unprotected queues diverge at rho=1.5 — mean response time grows
    // with sim_time while the protected stack's stays bounded, so the
    // ratio widens with scale (~3x at 1e5 s, far more at the default
    // 1e6 s). 2x is the scale-robust floor...
    const bool diverged = orr_unprotected_rt > 2.0 * orr_full_rt;
    // ...and the cluster completing within 10% of its capacity ceiling.
    const bool near_capacity = orr_full_goodput >= 0.9 * capacity;
    std::cout << "  ORR rho=1.5 response time, none vs full: "
              << orr_unprotected_rt << " vs " << orr_full_rt << " s "
              << (diverged ? "(diverges unprotected — expected)"
                           : "(no divergence signal — FAIL)")
              << "\n";
    std::cout << "  ORR rho=1.5 protected goodput " << orr_full_goodput
              << " vs capacity " << capacity << " jobs/s "
              << (near_capacity ? "(within 10% — PASS)" : "(FAIL)") << "\n";
    pass = pass && diverged && near_capacity;
  } else {
    std::cout << "  (rho sweep did not include 1.5 — capacity check "
              << "skipped)\n";
  }
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
