// Microbenchmarks for the allocation solvers (Algorithm 1 and the
// weighted baseline). The optimized solver is O(n log n); the paper's
// point is that it is cheap enough to recompute whenever the utilization
// estimate drifts.
#include <benchmark/benchmark.h>

#include <vector>

#include "alloc/optimized.h"
#include "alloc/scheme.h"
#include "rng/rng.h"

namespace {

std::vector<double> random_speeds(size_t n, uint64_t seed) {
  hs::rng::Xoshiro256 gen(seed);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.5, 20.0);
  }
  return speeds;
}

void BM_OptimizedAllocation(benchmark::State& state) {
  const auto speeds = random_speeds(static_cast<size_t>(state.range(0)), 42);
  const hs::alloc::OptimizedAllocation scheme;
  for (auto _ : state) {
    auto allocation = scheme.compute(speeds, 0.7);
    benchmark::DoNotOptimize(allocation);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OptimizedAllocation)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_WeightedAllocation(benchmark::State& state) {
  const auto speeds = random_speeds(static_cast<size_t>(state.range(0)), 42);
  const hs::alloc::WeightedAllocation scheme;
  for (auto _ : state) {
    auto allocation = scheme.compute(speeds, 0.7);
    benchmark::DoNotOptimize(allocation);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WeightedAllocation)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_OptimizedCutoffOnly(benchmark::State& state) {
  auto speeds = random_speeds(static_cast<size_t>(state.range(0)), 7);
  std::sort(speeds.begin(), speeds.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hs::alloc::optimized_cutoff(speeds, 0.4));
  }
}
BENCHMARK(BM_OptimizedCutoffOnly)->Arg(64)->Arg(4096);

void BM_ObjectiveEvaluation(benchmark::State& state) {
  const auto speeds = random_speeds(static_cast<size_t>(state.range(0)), 9);
  const auto allocation =
      hs::alloc::OptimizedAllocation().compute(speeds, 0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hs::alloc::objective_value(allocation, speeds, 0.7));
  }
}
BENCHMARK(BM_ObjectiveEvaluation)->Arg(64)->Arg(4096);

}  // namespace
