// Figure 3 — performance under different skewness of computer speeds.
//
// 18 computers: 2 fast + 16 slow (speed 1). The fast machines' speed is
// swept from 1 (homogeneous) to 20 (highly skewed) at overall system
// utilization 70%. Panels: (a) mean response time, (b) mean response
// ratio, (c) fairness, for WRAN/ORAN/WRR/ORR and Dynamic Least-Load.
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Figure 3: effect of speed skewness (18 machines = 2 fast + 16 "
      "slow, fast speed swept 1..20, rho = 0.7)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  parser.add_option("speeds", "1,2,4,6,8,10,14,20",
                    "comma-separated fast-machine speeds to sweep");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");

  const std::vector<double> sweep =
      bench::parse_double_list(parser.get_string("speeds"));

  bench::print_header("Figure 3", "Effect of speed skewness", options);

  const auto& policies = core::all_policies();
  util::TablePrinter time_table({"fast speed", "WRAN", "ORAN", "WRR", "ORR",
                                 "LeastLoad"});
  util::TablePrinter ratio_table({"fast speed", "WRAN", "ORAN", "WRR", "ORR",
                                  "LeastLoad"});
  util::TablePrinter fairness_table({"fast speed", "WRAN", "ORAN", "WRR",
                                     "ORR", "LeastLoad"});

  double orr_vs_wrr_at_max = 0.0;
  double oran_vs_wran_at_max = 0.0;
  for (double fast : sweep) {
    const auto cluster = cluster::ClusterConfig::paper_skewness(fast);
    time_table.begin_row();
    ratio_table.begin_row();
    fairness_table.begin_row();
    time_table.cell(fast, 1);
    ratio_table.cell(fast, 1);
    fairness_table.cell(fast, 1);
    double wrr_ratio = 0.0, orr_ratio = 0.0;
    double wran_ratio = 0.0, oran_ratio = 0.0;
    for (core::PolicyKind policy : policies) {
      const auto result =
          bench::run_policy(options, policy, cluster.speeds(), rho);
      time_table.cell(bench::format_ci(result.response_time, 1));
      ratio_table.cell(bench::format_ci(result.response_ratio, 3));
      fairness_table.cell(bench::format_ci(result.fairness, 2));
      switch (policy) {
        case core::PolicyKind::kWRR:
          wrr_ratio = result.response_ratio.mean;
          break;
        case core::PolicyKind::kORR:
          orr_ratio = result.response_ratio.mean;
          break;
        case core::PolicyKind::kWRAN:
          wran_ratio = result.response_ratio.mean;
          break;
        case core::PolicyKind::kORAN:
          oran_ratio = result.response_ratio.mean;
          break;
        default:
          break;
      }
    }
    if (fast == sweep.back()) {
      orr_vs_wrr_at_max = 1.0 - orr_ratio / wrr_ratio;
      oran_vs_wran_at_max = 1.0 - oran_ratio / wran_ratio;
    }
  }

  bench::emit_table(options, "(a) Mean response time (seconds):", time_table);
  bench::emit_table(options, "(b) Mean response ratio:", ratio_table);
  bench::emit_table(options, "(c) Fairness (stddev of response ratio, "
                             "smaller is better):",
                    fairness_table);

  std::cout << "Reproduction check (paper: at 20:1 skew ORR beats WRR by "
               "~42% and ORAN beats WRAN by ~49% in response ratio):\n"
            << "  measured at max skew: ORR vs WRR  "
            << util::format_double(orr_vs_wrr_at_max * 100.0, 1) << "%\n"
            << "  measured at max skew: ORAN vs WRAN "
            << util::format_double(oran_vs_wran_at_max * 100.0, 1) << "%\n";
  return 0;
}
