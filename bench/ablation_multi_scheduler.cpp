// Ablation A10 — relaxing the central-scheduler assumption.
//
// The system model (Figure 1) routes every job through one central
// scheduler, but the deployments the paper motivates — DNS rotation,
// replicated web front-ends — split the stream across k independent
// schedulers with no shared state. This ablation runs ORR and Dynamic
// Least-Load with k = 1..8 independent scheduler instances (jobs split
// randomly among them) and measures what decentralization costs each:
// ORR's smoothing partially randomizes away (superposed independent
// round-robins are burstier than one), and each Least-Load instance
// sees only 1/k of the departure reports.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cluster/config.h"

namespace {

hs::cluster::ExperimentResult run_multi(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho, size_t scheduler_count,
    hs::core::PolicyKind policy) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  // run_experiment drives run_simulation with a single dispatcher; for
  // the multi-scheduler variant we run replications directly here.
  std::vector<double> ratios;
  hs::cluster::ExperimentResult aggregate;
  std::vector<hs::cluster::SimulationResult> reps;
  for (unsigned r = 0; r < config.replications; ++r) {
    hs::cluster::SimulationConfig sim = config.simulation;
    sim.seed = hs::rng::derive_seed(config.base_seed, r,
                                    hs::rng::Stream::kReplication);
    std::vector<std::unique_ptr<hs::dispatch::Dispatcher>> owners;
    std::vector<hs::dispatch::Dispatcher*> schedulers;
    for (size_t s = 0; s < scheduler_count; ++s) {
      owners.push_back(
          hs::core::make_policy_dispatcher(policy, speeds, rho));
      schedulers.push_back(owners.back().get());
    }
    reps.push_back(hs::cluster::run_simulation_multi(sim, schedulers));
    ratios.push_back(reps.back().mean_response_ratio);
  }
  aggregate.response_ratio = hs::stats::mean_confidence_interval(ratios);
  aggregate.replications = std::move(reps);
  return aggregate;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A10: k independent schedulers instead of one central "
      "scheduler (base configuration, random job split)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");

  bench::print_header("Ablation A10", "Decentralized schedulers", options);
  const auto cluster = cluster::ClusterConfig::paper_base();

  util::TablePrinter table(
      {"schedulers k", "ORR", "ORAN", "LeastLoad"});
  for (size_t k : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    table.begin_row();
    table.cell(static_cast<long>(k));
    for (core::PolicyKind policy :
         {core::PolicyKind::kORR, core::PolicyKind::kORAN,
          core::PolicyKind::kLeastLoad}) {
      const auto result =
          run_multi(options, cluster.speeds(), rho, k, policy);
      table.cell(bench::format_ci(result.response_ratio, 3));
    }
  }
  bench::emit_table(options,
                    "Mean response ratio at rho = " +
                        util::format_double(rho, 2) + ":",
                    table);

  std::cout << "Reproduction check: ORAN is k-invariant (random splits of "
               "random dispatch change nothing); ORR degrades towards "
               "ORAN as k grows (independent round-robins superpose into "
               "a burstier stream) but retains the optimized allocation "
               "advantage; Least-Load degrades as each instance sees only "
               "1/k of the feedback.\n";
  return 0;
}
