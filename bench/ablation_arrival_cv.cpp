// Ablation A2 — arrival burstiness and the value of round-robin
// dispatching.
//
// §5.3 argues round-robin dispatching wins by smoothing burstiness. This
// ablation sweeps the inter-arrival CV from 1 (Poisson) to 5 and
// measures the WRR-vs-WRAN and ORR-vs-ORAN gaps: the round-robin
// advantage should grow with burstiness.
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

namespace {

hs::cluster::ExperimentResult run_with_cv(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho, double cv,
    hs::core::PolicyKind policy) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  if (cv <= 1.0) {
    config.simulation.workload.arrival_kind =
        hs::workload::ArrivalKind::kPoisson;
  } else {
    config.simulation.workload.arrival_kind =
        hs::workload::ArrivalKind::kHyperExp;
    config.simulation.workload.arrival_cv = cv;
  }
  return hs::cluster::run_experiment(
      config, hs::core::policy_dispatcher_factory(policy, speeds, rho));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A2: arrival burstiness sweep — round-robin vs random "
      "dispatching as the inter-arrival CV grows (base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  parser.add_option("cvs", "1,2,3,4,5",
                    "comma-separated inter-arrival CVs (1 = Poisson)");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");

  bench::print_header("Ablation A2", "Arrival burstiness sweep", options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  const auto cvs = bench::parse_double_list(parser.get_string("cvs"));

  util::TablePrinter table({"arrival CV", "WRAN", "WRR", "WRR gain %",
                            "ORAN", "ORR", "ORR gain %"});
  for (double cv : cvs) {
    const auto wran = run_with_cv(options, cluster.speeds(), rho, cv,
                                  core::PolicyKind::kWRAN);
    const auto wrr = run_with_cv(options, cluster.speeds(), rho, cv,
                                 core::PolicyKind::kWRR);
    const auto oran = run_with_cv(options, cluster.speeds(), rho, cv,
                                  core::PolicyKind::kORAN);
    const auto orr = run_with_cv(options, cluster.speeds(), rho, cv,
                                 core::PolicyKind::kORR);
    table.begin_row();
    table.cell(cv, 1);
    table.cell(bench::format_ci(wran.response_ratio, 3));
    table.cell(bench::format_ci(wrr.response_ratio, 3));
    table.cell(
        (1.0 - wrr.response_ratio.mean / wran.response_ratio.mean) * 100.0,
        1);
    table.cell(bench::format_ci(oran.response_ratio, 3));
    table.cell(bench::format_ci(orr.response_ratio, 3));
    table.cell(
        (1.0 - orr.response_ratio.mean / oran.response_ratio.mean) * 100.0,
        1);
  }
  bench::emit_table(options,
                    "Mean response ratio at rho = " +
                        util::format_double(rho, 2) + ":",
                    table);

  std::cout << "Reproduction check: the round-robin dispatching gain over "
               "random grows with arrival burstiness (the paper's CV = 3 "
               "sits in the middle of this sweep).\n";
  return 0;
}
