// Table 2 — the combinations of job dispatching strategies and workload
// allocation schemes that define the four static policies, plus the
// allocations each computes on the base configuration.
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Table 2: policy combination matrix and the allocations each scheme "
      "computes on the base configuration (Table 3)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "system utilization for the allocations");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");

  bench::print_header("Table 2", "Policy combination matrix", options);

  util::TablePrinter matrix(
      {"dispatching \\ allocation", "weighted", "optimized"});
  matrix.add_row({"random", "WRAN", "ORAN"});
  matrix.add_row({"round-robin", "WRR", "ORR"});
  bench::emit_table(options, "", matrix);

  const auto base = cluster::ClusterConfig::paper_base();
  std::cout << "Base configuration (Table 3): " << base.describe() << "\n\n";

  util::TablePrinter allocations({"speed", "weighted alpha", "optimized alpha"});
  const auto weighted =
      core::policy_allocation(core::PolicyKind::kWRR, base.speeds(), rho);
  const auto optimized =
      core::policy_allocation(core::PolicyKind::kORR, base.speeds(), rho);
  for (size_t i = 0; i < base.size(); ++i) {
    allocations.begin_row();
    allocations.cell(base.speeds()[i], 1);
    allocations.cell(weighted[i], 4);
    allocations.cell(optimized[i], 4);
  }
  bench::emit_table(options,
                    "Allocation fractions at rho = " +
                        util::format_double(rho, 2) + ":",
                    allocations);
  return 0;
}
