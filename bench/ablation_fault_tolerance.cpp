// Ablation A8 — fault injection and failure-aware dispatching.
//
// The paper's static policies never reconsider their allocation; when a
// machine actually crashes they keep feeding it jobs. This ablation
// injects machine crash/recovery faults (cluster/faults.h) and compares
// every policy fault-oblivious versus wrapped in the failure-aware
// decorator (dispatch/fault_aware.h), which blacklists reported-down
// machines and — for the static policies — recomputes the Algorithm 1
// allocation over the survivors. Two experiments:
//
//  1. Stochastic faults: every machine crashes with exponential MTBF and
//     repairs with exponential MTTR; goodput and job-loss accounting
//     across an MTBF sweep.
//  2. Scripted mid-run crash of the fastest machine (the paper-base
//     speed-12 machine) for half the run — the acceptance scenario:
//     failure-aware ORR must out-deliver fault-oblivious ORR.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cluster/config.h"

namespace {

using hs::bench::BenchOptions;
using hs::cluster::ExperimentResult;
using hs::core::PolicyKind;

ExperimentResult run_with_faults(const BenchOptions& options,
                                 const std::vector<double>& speeds,
                                 double rho, PolicyKind policy, bool aware,
                                 const hs::cluster::FaultConfig& faults) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  config.simulation.faults = faults;
  auto factory =
      aware ? hs::core::fault_aware_dispatcher_factory(policy, speeds, rho)
            : hs::core::policy_dispatcher_factory(policy, speeds, rho);
  return hs::cluster::run_experiment(config, factory);
}

std::string loss_summary(const ExperimentResult& result) {
  return std::to_string(result.total_jobs_lost) + "/" +
         std::to_string(result.total_jobs_dropped);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A8: machine crash/recovery faults — fault-oblivious vs "
      "failure-aware dispatching (base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.6", "overall system utilization (nominal)");
  parser.add_option("mtbf", "1e5,3e4,1e4",
                    "mean time between failures per machine, seconds");
  parser.add_option("mttr-frac", "0.1",
                    "mean time to repair as a fraction of MTBF");
  parser.add_option("max-attempts", "3",
                    "dispatch attempts per job before it is dropped");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");
  const auto mtbfs = bench::parse_double_list(parser.get_string("mtbf"));
  const double mttr_frac = parser.get_double("mttr-frac");
  const auto max_attempts =
      static_cast<uint32_t>(parser.get_double("max-attempts"));

  bench::print_header("Ablation A8", "Fault injection and recovery",
                      options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  const auto& speeds = cluster.speeds();

  // ---- Experiment 1: stochastic MTBF sweep ----
  const std::vector<PolicyKind> policies = {
      PolicyKind::kWRAN, PolicyKind::kWRR, PolicyKind::kORR,
      PolicyKind::kLeastLoad};
  util::TablePrinter table({"MTBF", "policy", "goodput (obliv)",
                            "goodput (aware)", "lost/dropped (obliv)",
                            "lost/dropped (aware)"});
  for (double mtbf : mtbfs) {
    cluster::FaultConfig faults;
    faults.processes.assign(speeds.size(), {mtbf, mtbf * mttr_frac});
    faults.retry.max_attempts = max_attempts;
    for (PolicyKind policy : policies) {
      const auto oblivious =
          run_with_faults(options, speeds, rho, policy, false, faults);
      const auto aware =
          run_with_faults(options, speeds, rho, policy, true, faults);
      table.begin_row();
      table.cell(mtbf, 0);
      table.cell(core::policy_name(policy));
      table.cell(bench::format_ci(oblivious.goodput, 3));
      table.cell(bench::format_ci(aware.goodput, 3));
      table.cell(loss_summary(oblivious));
      table.cell(loss_summary(aware));
    }
  }
  bench::emit_table(
      options,
      "Goodput (completed jobs/s of measurement window) and total "
      "lost/dropped jobs across replications; every machine fails with "
      "the row's MTBF, repairs in MTBF/10 on average:",
      table);

  // ---- Experiment 2: scripted crash of the fastest machine ----
  size_t fastest = 0;
  for (size_t i = 1; i < speeds.size(); ++i) {
    if (speeds[i] > speeds[fastest]) {
      fastest = i;
    }
  }
  cluster::FaultConfig crash;
  crash.outages.push_back(
      {options.sim_time * 0.4, options.sim_time * 0.5, fastest});
  crash.retry.max_attempts = max_attempts;

  util::TablePrinter crash_table({"policy", "goodput (obliv)",
                                  "goodput (aware)", "lost/dropped (obliv)",
                                  "lost/dropped (aware)"});
  double orr_oblivious_goodput = 0.0;
  double orr_aware_goodput = 0.0;
  for (PolicyKind policy : policies) {
    const auto oblivious =
        run_with_faults(options, speeds, rho, policy, false, crash);
    const auto aware =
        run_with_faults(options, speeds, rho, policy, true, crash);
    if (policy == PolicyKind::kORR) {
      orr_oblivious_goodput = oblivious.goodput.mean;
      orr_aware_goodput = aware.goodput.mean;
    }
    crash_table.begin_row();
    crash_table.cell(core::policy_name(policy));
    crash_table.cell(bench::format_ci(oblivious.goodput, 3));
    crash_table.cell(bench::format_ci(aware.goodput, 3));
    crash_table.cell(loss_summary(oblivious));
    crash_table.cell(loss_summary(aware));
  }
  bench::emit_table(
      options,
      "Scripted outage: the fastest (speed 12) machine is down during "
      "[0.4, 0.9]·sim_time:",
      crash_table);

  std::cout << "Reproduction check: fault-oblivious ORR keeps routing "
               "most of the load into the dead machine and drops what "
               "the retry budget cannot save; the failure-aware wrapper "
               "re-applies Algorithm 1 to the survivors and recovers "
               "most of the goodput. ORR goodput aware vs oblivious: "
            << orr_aware_goodput << " vs " << orr_oblivious_goodput
            << (orr_aware_goodput > orr_oblivious_goodput ? " (PASS)"
                                                          : " (FAIL)")
            << "\n";
  return orr_aware_goodput > orr_oblivious_goodput ? 0 : 1;
}
