// Ablation A1 — the PS idealization of preemptive round-robin.
//
// The paper models preemptive round-robin CPU scheduling as processor
// sharing (its quantum→0 limit). This ablation quantifies what the
// idealization hides: the same workload and ORR policy are run under
// exact PS, finite-quantum round-robin (several quanta), and FCFS.
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

namespace {

hs::cluster::ExperimentResult run_with_discipline(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho,
    hs::cluster::ServiceDiscipline discipline, double quantum) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  config.simulation.discipline = discipline;
  config.simulation.rr_quantum = quantum;
  return hs::cluster::run_experiment(
      config, hs::core::policy_dispatcher_factory(hs::core::PolicyKind::kORR,
                                                  speeds, rho));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A1: service discipline — exact processor sharing vs "
      "finite-quantum round-robin vs FCFS, under ORR on the base "
      "configuration");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  parser.add_option("quanta", "0.5,2,10",
                    "comma-separated round-robin quanta in seconds");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");
  // Quantum simulation costs ~size/quantum events per job (mean size is
  // 76.8 s); cap the default horizon so small quanta stay affordable.
  if (options.sim_time > 5.0e4) {
    options.sim_time = 5.0e4;
  }

  bench::print_header("Ablation A1",
                      "Service discipline: PS vs quantum RR vs FCFS",
                      options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  const auto quanta = bench::parse_double_list(parser.get_string("quanta"));

  util::TablePrinter table({"discipline", "mean response ratio", "fairness",
                            "p99 response ratio (rep 0)"});
  const auto ps =
      run_with_discipline(options, cluster.speeds(), rho,
                          cluster::ServiceDiscipline::kProcessorSharing, 1.0);
  table.begin_row();
  table.cell("processor sharing (paper model)");
  table.cell(bench::format_ci(ps.response_ratio, 3));
  table.cell(bench::format_ci(ps.fairness, 2));
  table.cell(ps.replications[0].response_ratio_p99, 2);

  for (double q : quanta) {
    const auto rr = run_with_discipline(
        options, cluster.speeds(), rho,
        cluster::ServiceDiscipline::kRoundRobin, q);
    table.begin_row();
    table.cell("round-robin, quantum " + util::format_double(q, 2) + " s");
    table.cell(bench::format_ci(rr.response_ratio, 3));
    table.cell(bench::format_ci(rr.fairness, 2));
    table.cell(rr.replications[0].response_ratio_p99, 2);
  }

  const auto fcfs = run_with_discipline(
      options, cluster.speeds(), rho, cluster::ServiceDiscipline::kFcfs, 1.0);
  table.begin_row();
  table.cell("FCFS");
  table.cell(bench::format_ci(fcfs.response_ratio, 3));
  table.cell(bench::format_ci(fcfs.fairness, 2));
  table.cell(fcfs.replications[0].response_ratio_p99, 2);

  bench::emit_table(options,
                    "ORR on the base configuration at rho = " +
                        util::format_double(rho, 2) + ":",
                    table);

  std::cout << "Reproduction check: small quanta must match PS closely; "
               "large quanta drift; FCFS collapses under the heavy-tailed "
               "sizes (large jobs block small ones), which is why the paper "
               "assumes preemptive scheduling.\n";
  return 0;
}
