// Sampling-quality evaluation harness for the weighted samplers behind
// random dispatch (rng::DiscreteChoice and rng::AliasTable).
//
// The alias table is an exact method — for the same weights it must hit
// the same target fractions as the CDF search, only faster. This harness
// draws N samples per (sampler, n) cell from the optimized allocation's
// fractions, then reports
//   * RMSE between empirical and target fractions, against the
//     multinomial sampling envelope sqrt(mean p(1-p) / N), and
//   * Pearson chi-square against the targets, whose expectation is the
//     degrees of freedom (bins - 1) with variance 2·df.
// It SELF-ASSERTS: RMSE must stay within 3x the envelope and chi-square
// within df + 6·sqrt(2·df), and the process exits non-zero on any
// violation — so CI catches a biased table construction, not just a slow
// one. Speed itself is measured in bench/micro_dispatch.cpp.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "alloc/optimized.h"
#include "rng/alias_table.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

std::vector<double> random_speeds(size_t n, uint64_t seed) {
  hs::rng::Xoshiro256 gen(seed);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.5, 20.0);
  }
  return speeds;
}

struct CellResult {
  double rmse = 0.0;
  double rmse_bound = 0.0;  // 3x multinomial envelope
  double chi_square = 0.0;
  double chi_square_bound = 0.0;  // df + 6*sqrt(2*df)
  size_t bins = 0;                // targets with p > 0
  bool pass = false;
};

// Draw `draws` samples via `sample(gen)` and score the empirical
// fractions against `targets`.
template <typename Sampler>
CellResult score(const Sampler& sampler, const std::vector<double>& targets,
                 uint64_t draws, uint64_t seed) {
  hs::rng::Xoshiro256 gen(seed);
  std::vector<uint64_t> counts(targets.size(), 0);
  for (uint64_t i = 0; i < draws; ++i) {
    ++counts[sampler.sample(gen)];
  }

  CellResult r;
  double sum_sq_err = 0.0;
  double sum_pq = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    const double p = targets[i];
    const double empirical =
        static_cast<double>(counts[i]) / static_cast<double>(draws);
    sum_sq_err += (empirical - p) * (empirical - p);
    sum_pq += p * (1.0 - p);
    if (p > 0.0) {
      const double expected = p * static_cast<double>(draws);
      const double diff = static_cast<double>(counts[i]) - expected;
      r.chi_square += diff * diff / expected;
      ++r.bins;
    } else if (counts[i] != 0) {
      // A zero-weight machine received a job: unconditionally broken.
      r.chi_square = std::numeric_limits<double>::infinity();
    }
  }
  const double n = static_cast<double>(targets.size());
  r.rmse = std::sqrt(sum_sq_err / n);
  r.rmse_bound =
      3.0 * std::sqrt(sum_pq / n / static_cast<double>(draws));
  const double df = static_cast<double>(r.bins - 1);
  r.chi_square_bound = df + 6.0 * std::sqrt(2.0 * df);
  r.pass = r.rmse <= r.rmse_bound && r.chi_square <= r.chi_square_bound;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Sampling-quality evaluation: empirical vs target dispatch "
      "fractions (RMSE + chi-square) for the CDF and alias samplers. "
      "Self-asserting: exits non-zero if any cell falls outside its "
      "statistical envelope.");
  parser.add_option("draws", "400000", "samples per (sampler, n) cell");
  parser.add_option("sizes", "100,1000,10000", "comma-separated cluster sizes");
  parser.add_option("rho", "0.7", "system utilization for the allocation");
  parser.add_option("seed", "20260808", "base RNG seed");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto draws = static_cast<uint64_t>(parser.get_double("draws"));
  const double rho = parser.get_double("rho");
  const auto seed = static_cast<uint64_t>(parser.get_double("seed"));

  std::vector<size_t> sizes;
  {
    const std::string text = parser.get_string("sizes");
    size_t start = 0;
    while (start < text.size()) {
      size_t comma = text.find(',', start);
      if (comma == std::string::npos) {
        comma = text.size();
      }
      sizes.push_back(
          static_cast<size_t>(std::stoul(text.substr(start, comma - start))));
      start = comma + 1;
    }
  }

  std::printf("== Sampling quality: empirical vs target fractions ==\n");
  std::printf("draws per cell: %llu, rho: %.2f\n\n",
              static_cast<unsigned long long>(draws), rho);

  util::TablePrinter table({"sampler", "n", "bins", "rmse", "rmse bound",
                            "chi^2", "chi^2 bound", "verdict"});
  bool all_pass = true;
  for (const size_t n : sizes) {
    const auto allocation =
        alloc::OptimizedAllocation().compute(random_speeds(n, 2024), rho);
    const std::vector<double>& targets = allocation.fractions();

    const rng::DiscreteChoice cdf(targets);
    const rng::AliasTable alias(targets);
    struct Row {
      const char* name;
      CellResult result;
    };
    const Row rows[] = {
        {"cdf", score(cdf, targets, draws, seed + n)},
        {"alias", score(alias, targets, draws, seed + n)},
    };
    for (const Row& row : rows) {
      table.begin_row();
      table.cell(row.name);
      table.cell(static_cast<long>(n));
      table.cell(static_cast<long>(row.result.bins));
      table.cell(row.result.rmse, 6);
      table.cell(row.result.rmse_bound, 6);
      table.cell(row.result.chi_square, 2);
      table.cell(row.result.chi_square_bound, 2);
      table.cell(row.result.pass ? "ok" : "FAIL");
      all_pass = all_pass && row.result.pass;
    }
  }
  table.print(std::cout);

  if (!all_pass) {
    std::printf("\nFAIL: at least one sampler cell fell outside its "
                "statistical envelope.\n");
    return 1;
  }
  std::printf("\nok: both samplers match their target fractions at every "
              "size.\n");
  return 0;
}
