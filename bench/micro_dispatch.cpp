// Microbenchmarks for the per-job dispatching decision — the operation
// on the request hot path of a deployed scheduler.
#include <benchmark/benchmark.h>

#include <vector>

#include "alloc/optimized.h"
#include "dispatch/least_load.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "rng/rng.h"

namespace {

std::vector<double> random_speeds(size_t n) {
  hs::rng::Xoshiro256 gen(2024);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.5, 20.0);
  }
  return speeds;
}

hs::alloc::Allocation allocation_for(size_t n) {
  return hs::alloc::OptimizedAllocation().compute(random_speeds(n), 0.7);
}

void BM_SmoothRrPick(benchmark::State& state) {
  hs::dispatch::SmoothRoundRobinDispatcher dispatcher{
      allocation_for(static_cast<size_t>(state.range(0)))};
  hs::rng::Xoshiro256 gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatcher.pick(gen));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmoothRrPick)->Arg(8)->Arg(64)->Arg(512);

void BM_RandomPick(benchmark::State& state) {
  hs::dispatch::RandomDispatcher dispatcher{
      allocation_for(static_cast<size_t>(state.range(0)))};
  hs::rng::Xoshiro256 gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatcher.pick(gen));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomPick)->Arg(8)->Arg(64)->Arg(512);

void BM_LeastLoadPick(benchmark::State& state) {
  hs::dispatch::LeastLoadDispatcher dispatcher(
      random_speeds(static_cast<size_t>(state.range(0))));
  hs::rng::Xoshiro256 gen(1);
  size_t since_report = 0;
  for (auto _ : state) {
    const size_t machine = dispatcher.pick(gen);
    benchmark::DoNotOptimize(machine);
    // Keep queues bounded: report a departure for every pick.
    if (++since_report > 1) {
      dispatcher.on_departure_report(machine);
      since_report = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeastLoadPick)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
