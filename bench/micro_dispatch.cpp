// Microbenchmarks for the per-job dispatching decision — the operation
// on the request hot path of a deployed scheduler.
//
// The argument is the cluster size n, swept to 10⁶ machines so the
// complexity claims of docs/PERFORMANCE.md are measured, not assumed:
//   * random dispatch — O(log n) CDF binary search vs the O(1) alias
//     table (BM_RandomPick / BM_RandomPickAlias),
//   * least-load — O(log n) tournament tree vs the O(n) reference scan
//     (BM_LeastLoadPick / BM_LeastLoadPickScan),
//   * the round-robins, whose per-pick scan is O(active machines) by
//     construction (BM_SmoothRrPick / BM_SwrrPick).
// Sampling *quality* (empirical vs target fractions) is evaluated by the
// self-asserting harness in bench/eval_sampling.cpp.
#include <benchmark/benchmark.h>

#include <memory>
#include <utility>
#include <vector>

#include "alloc/optimized.h"
#include "dispatch/least_load.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "dispatch/swrr.h"
#include "rng/rng.h"

namespace {

std::vector<double> random_speeds(size_t n) {
  hs::rng::Xoshiro256 gen(2024);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.5, 20.0);
  }
  return speeds;
}

hs::alloc::Allocation allocation_for(size_t n) {
  return hs::alloc::OptimizedAllocation().compute(random_speeds(n), 0.7);
}

// The simulation only ever calls pick() through a Dispatcher* (the
// policy factories return unique_ptr<Dispatcher>), so the pick loops
// measure that indirect call, not a devirtualized concrete call the
// production hot path never makes. DoNotOptimize on the pointer keeps
// the compiler from proving the dynamic type and inlining anyway.
template <typename Concrete>
void pick_loop(benchmark::State& state, std::unique_ptr<Concrete> owned) {
  std::unique_ptr<hs::dispatch::Dispatcher> dispatcher = std::move(owned);
  benchmark::DoNotOptimize(dispatcher);
  hs::rng::Xoshiro256 gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatcher->pick(gen));
  }
  state.SetItemsProcessed(state.iterations());
}

// n ∈ {8, 64, 512} are the original small-cluster points (kept so the
// regression gate's history stays comparable); 10²–10⁶ is the scaling
// surface.
void large_n_args(benchmark::internal::Benchmark* bench) {
  bench->Arg(8)->Arg(64)->Arg(100)->Arg(512)->Arg(1000)->Arg(10000)
      ->Arg(100000)->Arg(1000000);
}

void BM_SmoothRrPick(benchmark::State& state) {
  pick_loop(state,
            std::make_unique<hs::dispatch::SmoothRoundRobinDispatcher>(
                allocation_for(static_cast<size_t>(state.range(0)))));
}
BENCHMARK(BM_SmoothRrPick)->Apply(large_n_args);

void BM_SwrrPick(benchmark::State& state) {
  pick_loop(state, std::make_unique<hs::dispatch::SwrrDispatcher>(
                       allocation_for(static_cast<size_t>(state.range(0)))));
}
BENCHMARK(BM_SwrrPick)->Apply(large_n_args);

void BM_RandomPick(benchmark::State& state) {
  pick_loop(state, std::make_unique<hs::dispatch::RandomDispatcher>(
                       allocation_for(static_cast<size_t>(state.range(0)))));
}
BENCHMARK(BM_RandomPick)->Apply(large_n_args);

void BM_RandomPickAlias(benchmark::State& state) {
  pick_loop(state, std::make_unique<hs::dispatch::RandomDispatcher>(
                       allocation_for(static_cast<size_t>(state.range(0))),
                       hs::dispatch::SamplerKind::kAlias));
}
BENCHMARK(BM_RandomPickAlias)->Apply(large_n_args);

void least_load_loop(benchmark::State& state,
                     hs::dispatch::LeastLoadEngine engine) {
  std::unique_ptr<hs::dispatch::Dispatcher> dispatcher =
      std::make_unique<hs::dispatch::LeastLoadDispatcher>(
          random_speeds(static_cast<size_t>(state.range(0))), engine);
  benchmark::DoNotOptimize(dispatcher);
  hs::rng::Xoshiro256 gen(1);
  size_t since_report = 0;
  for (auto _ : state) {
    const size_t machine = dispatcher->pick(gen);
    benchmark::DoNotOptimize(machine);
    // Keep queues bounded: report a departure for every pick.
    if (++since_report > 1) {
      dispatcher->on_departure_report(machine);
      since_report = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LeastLoadPick(benchmark::State& state) {
  least_load_loop(state, hs::dispatch::LeastLoadEngine::kTree);
}
BENCHMARK(BM_LeastLoadPick)->Apply(large_n_args);

void BM_LeastLoadPickScan(benchmark::State& state) {
  least_load_loop(state, hs::dispatch::LeastLoadEngine::kScan);
}
BENCHMARK(BM_LeastLoadPickScan)->Apply(large_n_args);

// Survivor re-weighting cost: one allocation-free rebuild_fractions()
// call on a live random dispatcher (the fault/adaptive re-allocation
// path), per sampler. O(n) either way — the point is the constant and
// the zero allocations, pinned by tests/test_sampler_alloc.cpp.
void random_rebuild_loop(benchmark::State& state,
                         hs::dispatch::SamplerKind sampler) {
  const size_t n = static_cast<size_t>(state.range(0));
  hs::dispatch::RandomDispatcher dispatcher{allocation_for(n), sampler};
  const std::vector<double> fractions = allocation_for(n).fractions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatcher.rebuild_fractions(fractions));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RandomRebuild(benchmark::State& state) {
  random_rebuild_loop(state, hs::dispatch::SamplerKind::kCdf);
}
BENCHMARK(BM_RandomRebuild)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_RandomRebuildAlias(benchmark::State& state) {
  random_rebuild_loop(state, hs::dispatch::SamplerKind::kAlias);
}
BENCHMARK(BM_RandomRebuildAlias)->Arg(100)->Arg(10000)->Arg(1000000);

}  // namespace
