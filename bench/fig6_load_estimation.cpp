// Figure 6 — sensitivity of ORR to load estimation errors.
//
// Base configuration, utilization swept. ORR computes its allocation
// with an assumed utilization of (1+e)·rho: panel (a) sweeps
// underestimation (e < 0), panel (b) overestimation (e > 0). WRR is
// printed as the reference the paper converges to.
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

namespace {

void run_panel(const hs::bench::BenchOptions& options,
               const hs::cluster::ClusterConfig& cluster,
               const std::vector<double>& loads,
               const std::vector<double>& factors, const char* title) {
  using namespace hs;
  std::vector<std::string> headers = {"rho"};
  for (double f : factors) {
    const double pct = (f - 1.0) * 100.0;
    headers.push_back("ORR(" + std::string(pct >= 0 ? "+" : "") +
                      util::format_double(pct, 0) + "%)");
  }
  headers.emplace_back("WRR");
  util::TablePrinter table(headers);
  for (double rho : loads) {
    table.begin_row();
    table.cell(rho, 2);
    for (double f : factors) {
      const auto result = bench::run_policy(
          options, core::PolicyKind::kORR, cluster.speeds(), rho, f);
      table.cell(bench::format_ci(result.response_ratio, 3));
    }
    const auto wrr = bench::run_policy(options, core::PolicyKind::kWRR,
                                       cluster.speeds(), rho);
    table.cell(bench::format_ci(wrr.response_ratio, 3));
  }
  bench::emit_table(options, title, table);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Figure 6: ORR sensitivity to under/overestimation of system load "
      "(base configuration, Table 3)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("loads", "0.3,0.5,0.7,0.8,0.9",
                    "comma-separated utilization levels");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);

  const std::vector<double> loads =
      bench::parse_double_list(parser.get_string("loads"));

  bench::print_header("Figure 6", "Sensitivity to load estimation", options);
  const auto cluster = cluster::ClusterConfig::paper_base();

  run_panel(options, cluster, loads, {1.0, 0.95, 0.90, 0.85},
            "(a) Underestimation — mean response ratio (unstable cells "
            "blow up at high load, as the paper predicts):");
  run_panel(options, cluster, loads, {1.0, 1.05, 1.10, 1.15},
            "(b) Overestimation — mean response ratio (nearly harmless; "
            "converges towards WRR):");

  std::cout << "Reproduction check: underestimation at high load must "
               "degrade sharply (fast machines overloaded);\n"
               "overestimation stays within a few percent of exact ORR "
               "and approaches WRR.\n";
  return 0;
}
