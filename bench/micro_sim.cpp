// Microbenchmarks for the simulation engine: event queue throughput and
// end-to-end jobs/second of the full cluster simulation.
#include <benchmark/benchmark.h>

#include "cluster/sim.h"
#include "core/policy.h"
#include "queueing/ps_server.h"
#include "rng/rng.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  hs::sim::EventQueue queue;
  hs::rng::Xoshiro256 gen(3);
  const size_t depth = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < depth; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), [] {});
  }
  for (auto _ : state) {
    queue.push(gen.uniform(0.0, 1000.0), [] {});
    auto [time, fn] = queue.pop();
    benchmark::DoNotOptimize(time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EventQueueCancel(benchmark::State& state) {
  hs::sim::EventQueue queue;
  hs::rng::Xoshiro256 gen(5);
  for (auto _ : state) {
    auto handle = queue.push(gen.uniform(0.0, 1000.0), [] {});
    benchmark::DoNotOptimize(queue.cancel(handle));
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_PsServerArrivalDeparture(benchmark::State& state) {
  hs::sim::Simulator sim;
  hs::queueing::PsServer server(sim, 1.0, 0);
  hs::rng::Xoshiro256 gen(7);
  uint64_t id = 0;
  double t = 0.0;
  for (auto _ : state) {
    t += 0.5;
    sim.schedule_at(t, [&server, id, t] {
      server.arrive(hs::queueing::Job{id, t, 0.4});
    });
    ++id;
    sim.run_until(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PsServerArrivalDeparture);

void BM_FullClusterSimulation(benchmark::State& state) {
  // End-to-end jobs/second on the base configuration under ORR. The
  // counter makes the simulator's throughput visible so the cost of
  // --paper-scale runs can be predicted.
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 1.0, 1.0, 1.0, 1.0, 1.5, 1.5, 1.5, 1.5,
                   2.0, 2.0, 2.0, 5.0, 10.0, 12.0};
  config.rho = 0.7;
  config.sim_time = 50000.0;
  config.warmup_frac = 0.25;
  uint64_t jobs = 0;
  uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    auto dispatcher = hs::core::make_policy_dispatcher(
        hs::core::PolicyKind::kORR, config.speeds, config.rho);
    const auto result = hs::cluster::run_simulation(config, *dispatcher);
    jobs += result.completed_jobs;
    benchmark::DoNotOptimize(result.mean_response_ratio);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullClusterSimulation)->Unit(benchmark::kMillisecond);

}  // namespace
