// Microbenchmarks for the simulation engine: event queue throughput and
// end-to-end jobs/second of the full cluster simulation. The tracked
// numbers live in BENCH_sim.json (see docs/PERFORMANCE.md for the
// update workflow).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "cluster/sim.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "queueing/ps_server.h"
#include "rng/rng.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

/// No-op target for typed-event benchmarks.
class NullTarget final : public hs::sim::EventTarget {
 public:
  void on_event(uint32_t kind, const hs::sim::EventArgs&) override {
    benchmark::DoNotOptimize(kind);
  }
};

// Steady-state push+pop at a fixed heap depth, through the SBO callback
// fallback path (what tests and ad-hoc hooks use).
void BM_EventQueuePushPop(benchmark::State& state) {
  hs::sim::EventQueue queue;
  hs::rng::Xoshiro256 gen(3);
  const size_t depth = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < depth; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), [] {});
  }
  for (auto _ : state) {
    queue.push(gen.uniform(0.0, 1000.0), [] {});
    auto event = queue.pop();
    benchmark::DoNotOptimize(event.time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(4096)->Arg(65536);

// Steady-state push+pop of typed events — the hot path the simulation
// itself runs on.
void BM_EventQueueTypedPushPop(benchmark::State& state) {
  hs::sim::EventQueue queue;
  NullTarget target;
  hs::rng::Xoshiro256 gen(3);
  const size_t depth = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < depth; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), target, 0);
  }
  for (auto _ : state) {
    queue.push(gen.uniform(0.0, 1000.0), target, 0);
    auto event = queue.pop();
    benchmark::DoNotOptimize(event.time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueTypedPushPop)->Arg(64)->Arg(4096)->Arg(65536);

// Steady-state push+cancel at a fixed heap depth. The pre-filled window
// keeps the depth constant: cancellation removes its entry eagerly, so
// the heap holds exactly `depth` + 1 entries throughout and the loop
// measures real cancel cost, not an ever-deeper sift on a heap that
// only grows (the bug the original bench had under lazy deletion).
void BM_EventQueueCancel(benchmark::State& state) {
  hs::sim::EventQueue queue;
  NullTarget target;
  hs::rng::Xoshiro256 gen(5);
  const size_t depth = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < depth; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), target, 0);
  }
  for (auto _ : state) {
    auto handle = queue.push(gen.uniform(0.0, 1000.0), target, 0);
    benchmark::DoNotOptimize(queue.cancel(handle));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancel)->Arg(64)->Arg(4096);

// In-place reschedule of one event in a heap of `depth` others — the
// operation the PS server performs on every arrival.
void BM_EventQueueReschedule(benchmark::State& state) {
  hs::sim::EventQueue queue;
  NullTarget target;
  hs::rng::Xoshiro256 gen(9);
  const size_t depth = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < depth; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), target, 0);
  }
  auto handle = queue.push(gen.uniform(0.0, 1000.0), target, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queue.reschedule(handle, gen.uniform(0.0, 1000.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueReschedule)->Arg(64)->Arg(4096);

void BM_PsServerArrivalDeparture(benchmark::State& state) {
  hs::sim::Simulator sim;
  hs::queueing::PsServer server(sim, 1.0, 0);
  hs::rng::Xoshiro256 gen(7);
  uint64_t id = 0;
  double t = 0.0;
  for (auto _ : state) {
    t += 0.5;
    sim.schedule_at(t, [&server, id, t] {
      server.arrive(hs::queueing::Job{id, t, 0.4});
    });
    ++id;
    sim.run_until(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PsServerArrivalDeparture);

hs::cluster::SimulationConfig cluster_bench_config() {
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 1.0, 1.0, 1.0, 1.0, 1.5, 1.5, 1.5, 1.5,
                   2.0, 2.0, 2.0, 5.0, 10.0, 12.0};
  config.rho = 0.7;
  config.sim_time = 50000.0;
  config.warmup_frac = 0.25;
  return config;
}

// End-to-end jobs/second of a full cluster run under a policy. The
// counters make the simulator's throughput visible so the cost of
// --paper-scale runs can be predicted.
void run_cluster_bench(benchmark::State& state, hs::core::PolicyKind kind) {
  hs::cluster::SimulationConfig config = cluster_bench_config();
  uint64_t jobs = 0;
  uint64_t events = 0;
  uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    auto dispatcher =
        hs::core::make_policy_dispatcher(kind, config.speeds, config.rho);
    const auto result = hs::cluster::run_simulation(config, *dispatcher);
    jobs += result.completed_jobs;
    events += result.events_fired;
    benchmark::DoNotOptimize(result.mean_response_ratio);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

// ORR: the paper's headline static policy; pure typed-event hot loop.
void BM_FullClusterSimulation(benchmark::State& state) {
  run_cluster_bench(state, hs::core::PolicyKind::kORR);
}
BENCHMARK(BM_FullClusterSimulation)->Unit(benchmark::kMillisecond);

// Dynamic Least-Load: adds the delayed departure-report feedback path.
void BM_FullClusterSimulationLeastLoad(benchmark::State& state) {
  run_cluster_bench(state, hs::core::PolicyKind::kLeastLoad);
}
BENCHMARK(BM_FullClusterSimulationLeastLoad)->Unit(benchmark::kMillisecond);

// Same ORR run with full observability attached (trace sink + sampled
// metrics registry, no file I/O). The gap to BM_FullClusterSimulation
// is the recording overhead when observability is ON; the zero-overhead
// -off claim is pinned separately by the interleaved A/B runs recorded
// in BENCH_sim.json.
void BM_FullClusterSimulationTraced(benchmark::State& state) {
  hs::cluster::SimulationConfig config = cluster_bench_config();
  hs::obs::TraceSink sink;
  hs::obs::MetricsRegistry registry;
  hs::obs::Observer observer;
  observer.trace = &sink;
  observer.metrics = &registry;
  observer.sample_interval = 60.0;
  config.observer = &observer;
  uint64_t jobs = 0;
  uint64_t events = 0;
  uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    sink.clear();
    auto dispatcher = hs::core::make_policy_dispatcher(
        hs::core::PolicyKind::kORR, config.speeds, config.rho);
    const auto result = hs::cluster::run_simulation(config, *dispatcher);
    jobs += result.completed_jobs;
    events += result.events_fired;
    benchmark::DoNotOptimize(result.mean_response_ratio);
    benchmark::DoNotOptimize(sink.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullClusterSimulationTraced)->Unit(benchmark::kMillisecond);

}  // namespace
