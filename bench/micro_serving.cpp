// Microbenchmarks for the serving runtime: the cost of one routed
// request through ServingDispatcher (lock + clock read + policy pick +
// feedback) and how it scales under thread contention.
//
//   * BM_ServingAcquireRelease — sustained acquire+release pairs/sec on
//     a shared dispatcher from 1..16 threads (UseRealTime, so the
//     reported rate is wall-clock aggregate throughput). The 1-thread
//     row is the uncontended library overhead over a bare pick();
//     higher rows measure the TTAS spinlock under load.
//   * BM_ServingAcquireP99 — tail decision latency. Manual-time trick:
//     each iteration times a batch of individual acquires and reports
//     the batch's p99 as its iteration time, so the benchmark's
//     real_time IS the p99 (and bench_to_json's min-over-rounds keeps
//     the most contention-free estimate). The acceptance target is
//     p99 <= 1µs at n = 10⁴ for Least-Load and alias-sampled ORAN.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "core/policy.h"
#include "dispatch/dispatcher.h"
#include "rng/rng.h"
#include "serving/serving_dispatcher.h"

namespace {

using hs::core::PolicyKind;
using hs::dispatch::SamplerKind;

std::vector<double> random_speeds(size_t n) {
  hs::rng::Xoshiro256 gen(2024);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.5, 20.0);
  }
  return speeds;
}

// Threaded benchmarks share one stack across all threads; Setup/Teardown
// run once per benchmark run, outside the timed region.
struct ServingStack {
  std::unique_ptr<hs::dispatch::Dispatcher> inner;
  std::unique_ptr<hs::serving::ServingDispatcher> serving;
};
ServingStack g_stack;  // NOLINT(cert-err58-cpp)

void build_stack(PolicyKind kind, SamplerKind sampler, size_t n,
                 bool health = false) {
  g_stack.inner =
      hs::core::make_policy_dispatcher(kind, random_speeds(n), 0.7, 1.0,
                                       sampler);
  hs::serving::ServingConfig config;
  config.seed = 99;
  if (health) {
    // Armed but never firing (the deadline is beyond any bench run):
    // measures the detection layer's steady-state hot-path cost — one
    // ring store per acquire, one FIFO absorb per release, one expired
    // compare per pick.
    config.health.release_deadline = 1e9;
  }
  g_stack.serving = std::make_unique<hs::serving::ServingDispatcher>(
      *g_stack.inner, config);
}

void teardown_stack(const benchmark::State&) {
  g_stack.serving.reset();
  g_stack.inner.reset();
}

// --- Sustained throughput under contention -------------------------------

void acquire_release_loop(benchmark::State& state) {
  hs::serving::ServingDispatcher& serving = *g_stack.serving;
  for (auto _ : state) {
    const size_t machine = serving.acquire(1.0);
    (void)serving.release(machine, 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ServingAcquireRelease(benchmark::State& state) {
  acquire_release_loop(state);
}
BENCHMARK(BM_ServingAcquireRelease)
    ->Setup([](const benchmark::State& state) {
      build_stack(PolicyKind::kLeastLoad, SamplerKind::kCdf,
                  static_cast<size_t>(state.range(0)));
    })
    ->Teardown(teardown_stack)
    ->Arg(10000)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

void BM_ServingAcquireReleaseAlias(benchmark::State& state) {
  acquire_release_loop(state);
}
BENCHMARK(BM_ServingAcquireReleaseAlias)
    ->Setup([](const benchmark::State& state) {
      build_stack(PolicyKind::kORAN, SamplerKind::kAlias,
                  static_cast<size_t>(state.range(0)));
    })
    ->Teardown(teardown_stack)
    ->Arg(10000)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();

// --- Tail decision latency ----------------------------------------------

// One iteration = one batch; the iteration's manual time is the batch
// p99 of individual acquire() wall times, so the benchmark's real_time
// column reads directly in seconds-at-p99. Single-threaded by design —
// the acceptance gate targets uncontended tail latency.
//
// Iterations must be pinned explicitly: manual time accrues ~10³×
// slower than the wall (a ~1 ms batch credits only its ~1 µs p99), so
// google-benchmark's default accrue-until-min_time targeting would run
// for minutes. 64 batches ≈ 130k timed acquires in well under a second.
void acquire_p99_loop(benchmark::State& state) {
  using Clock = std::chrono::steady_clock;
  constexpr size_t kBatch = 2048;
  hs::serving::ServingDispatcher& serving = *g_stack.serving;
  std::vector<double> lat(kBatch);
  for (auto _ : state) {
    for (size_t i = 0; i < kBatch; ++i) {
      const auto t0 = Clock::now();
      const size_t machine = serving.acquire(1.0);
      const auto t1 = Clock::now();
      (void)serving.release(machine, 1.0);
      lat[i] = std::chrono::duration<double>(t1 - t0).count();
    }
    const size_t k = (kBatch * 99) / 100;
    std::nth_element(lat.begin(), lat.begin() + static_cast<long>(k),
                     lat.end());
    state.SetIterationTime(lat[k]);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ServingAcquireP99LeastLoad(benchmark::State& state) {
  acquire_p99_loop(state);
}
BENCHMARK(BM_ServingAcquireP99LeastLoad)
    ->Setup([](const benchmark::State& state) {
      build_stack(PolicyKind::kLeastLoad, SamplerKind::kCdf,
                  static_cast<size_t>(state.range(0)));
    })
    ->Teardown(teardown_stack)
    ->Arg(10000)
    ->Iterations(64)
    ->UseManualTime();

void BM_ServingAcquireP99Alias(benchmark::State& state) {
  acquire_p99_loop(state);
}
BENCHMARK(BM_ServingAcquireP99Alias)
    ->Setup([](const benchmark::State& state) {
      build_stack(PolicyKind::kORAN, SamplerKind::kAlias,
                  static_cast<size_t>(state.range(0)));
    })
    ->Teardown(teardown_stack)
    ->Arg(10000)
    ->Iterations(64)
    ->UseManualTime();

// The health layer's tax on the tail: deadline tracking armed on every
// acquire (but never expiring), against the same Least-Load stack as
// BM_ServingAcquireP99LeastLoad. The acceptance gate holds this within
// 1% of the health-free p99.
void BM_ServingAcquireP99Health(benchmark::State& state) {
  acquire_p99_loop(state);
}
BENCHMARK(BM_ServingAcquireP99Health)
    ->Setup([](const benchmark::State& state) {
      build_stack(PolicyKind::kLeastLoad, SamplerKind::kCdf,
                  static_cast<size_t>(state.range(0)), /*health=*/true);
    })
    ->Teardown(teardown_stack)
    ->Arg(10000)
    ->Iterations(64)
    ->UseManualTime();

}  // namespace
