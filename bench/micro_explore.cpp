// Microbenchmarks for the fault-space explorer: what one explored run
// costs, what the choice-point hook adds to a run, and how fast the
// HSSCHED1 codec is.
//
//   * BM_ExploreHookOverhead — the explorer scenario with choice_hook
//     null vs an empty ScheduleHook. The delta is the per-run price of
//     observing every stochastic choice point (the acceptance budget for
//     instrumentation-ON; OFF must be free and is pinned by goldens +
//     the pr10-explore-off A/B entry in BENCH_sim.json).
//   * BM_ExploreScheduledRun — one full run_schedule() with a 2-op crash
//     schedule, invariant checking included: the unit of work every
//     search driver and the shrinker repeats.
//   * BM_ScheduleCodec — encode+decode round-trip per op; the shrinker
//     and corpus replays live on this path.
#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/choice.h"
#include "cluster/sim.h"
#include "dispatch/least_load.h"
#include "explore/explorer.h"
#include "explore/hook.h"
#include "explore/schedule.h"

namespace {

using hs::cluster::ChoiceKind;
using hs::explore::ExploreConfig;
using hs::explore::Explorer;
using hs::explore::Override;
using hs::explore::Schedule;
using hs::explore::ScheduleHook;

hs::cluster::SimulationConfig scenario_config() {
  // The explorer's stack is built inside run_schedule(); this benchmark
  // isolates the hook cost on the bare scenario config instead, so the
  // null-hook and empty-hook rows differ only in the hook pointer.
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 1.5, 2.0};
  config.rho = 0.9;
  config.sim_time = 120.0;
  config.warmup_frac = 0.0;
  config.seed = 42;
  config.faults.processes.assign(3, {1.0e8, 8.0});
  config.network.dispatch_link.loss = 0.005;
  config.network.dispatch_link.duplicate = 0.005;
  config.network.dispatch_link.delay_mean = 0.01;
  config.network.report_link.loss = 0.005;
  config.network.heartbeat.interval = 1.0;
  return config;
}

void BM_ExploreHookOverhead(benchmark::State& state) {
  hs::cluster::SimulationConfig config = scenario_config();
  const Schedule empty;
  ScheduleHook hook(empty);
  config.choice_hook = state.range(0) != 0 ? &hook : nullptr;
  for (auto _ : state) {
    hs::dispatch::LeastLoadDispatcher dispatcher(config.speeds);
    const auto result = hs::cluster::run_simulation(config, dispatcher);
    benchmark::DoNotOptimize(result.completed_jobs);
  }
  state.SetLabel(state.range(0) != 0 ? "empty-hook" : "null-hook");
}
BENCHMARK(BM_ExploreHookOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ExploreScheduledRun(benchmark::State& state) {
  const Explorer explorer(ExploreConfig{});
  Schedule crash;
  crash.ops.push_back(
      Override::force_double(ChoiceKind::kFaultUptime, 0, 0, 20.0));
  crash.ops.push_back(
      Override::force_double(ChoiceKind::kFaultUptime, 1, 0, 70.0));
  for (auto _ : state) {
    const auto outcome = explorer.run_schedule(crash);
    benchmark::DoNotOptimize(outcome.coverage.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("runs/s incl. invariant check");
  state.counters["invariant_runs"] = 1;  // tree-scan diff adds a 2nd run
}
BENCHMARK(BM_ExploreScheduledRun)->Unit(benchmark::kMillisecond);

void BM_ScheduleCodec(benchmark::State& state) {
  const auto ops = static_cast<size_t>(state.range(0));
  Schedule schedule;
  for (size_t i = 0; i < ops; ++i) {
    schedule.ops.push_back(Override::force_double(
        ChoiceKind::kFaultUptime, static_cast<uint32_t>(i % 3),
        static_cast<uint32_t>(i / 3), 20.0 + static_cast<double>(i)));
  }
  for (auto _ : state) {
    const std::vector<uint8_t> bytes = schedule.encode();
    const Schedule decoded = Schedule::decode(bytes);
    benchmark::DoNotOptimize(decoded.ops.size());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * ops));
}
BENCHMARK(BM_ScheduleCodec)->Arg(2)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
