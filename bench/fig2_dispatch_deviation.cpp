// Figure 2 — comparison of job dispatching strategies by workload
// allocation deviation.
//
// 8 computers with workload fractions {0.35, 0.22, 0.15, 0.12, 0.04,
// 0.04, 0.04, 0.04}; hyperexponential arrivals with mean inter-arrival
// time 2.2 s; 30 consecutive 120 s intervals. The deviation
// Σᵢ(αᵢ − αᵢ′)² of round-robin dispatching must sit far below — and
// fluctuate far less than — random dispatching.
#include <algorithm>
#include <iostream>

#include "alloc/allocation.h"
#include "bench_common.h"
#include "cluster/sim.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "stats/running_stats.h"

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Figure 2: workload allocation deviation of round-robin vs random "
      "dispatching over 30 consecutive 120 s intervals");
  bench::BenchOptions::register_options(parser);
  parser.add_option("intervals", "30", "number of 120 s intervals to show");
  parser.add_option("mean-interarrival", "2.2",
                    "mean job inter-arrival time in seconds");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const auto intervals = static_cast<size_t>(parser.get_long("intervals"));
  const double mean_ia = parser.get_double("mean-interarrival");

  bench::print_header("Figure 2",
                      "Dispatching strategies: allocation deviation",
                      options);

  const std::vector<double> fractions = {0.35, 0.22, 0.15, 0.12,
                                         0.04, 0.04, 0.04, 0.04};
  const alloc::Allocation allocation(fractions);

  // The figure's x-axis is wall-clock intervals, so the simulation only
  // needs to cover them; machine speeds are irrelevant to the deviation
  // metric (only dispatch decisions are tracked) but each machine gets a
  // fraction-proportional speed large enough to keep the servers stable
  // at this arrival rate (mean size 76.8 s / mean inter-arrival 2.2 s
  // needs aggregate speed > 35).
  cluster::SimulationConfig config;
  config.speeds.clear();
  for (double f : fractions) {
    config.speeds.push_back(std::max(f, 0.02) * 80.0);
  }
  config.workload = workload::WorkloadSpec::paper_default();
  config.rho = 0.5;
  config.sim_time = static_cast<double>(intervals) * 120.0;
  config.warmup_frac = 0.0;
  config.deviation_expected = fractions;
  config.deviation_interval = 120.0;
  config.seed = options.seed;

  // Override the arrival rate to the figure's mean inter-arrival time by
  // scaling rho: λ = ρ·Σs/E[size] ⇒ ρ = E[size]/(mean_ia·Σs).
  double total_speed = 0.0;
  for (double s : config.speeds) {
    total_speed += s;
  }
  config.rho = config.workload.mean_job_size() / (mean_ia * total_speed);

  dispatch::SmoothRoundRobinDispatcher rr{allocation};
  dispatch::RandomDispatcher random_d{allocation};
  const auto rr_result = cluster::run_simulation(config, rr);
  const auto rand_result = cluster::run_simulation(config, random_d);

  util::TablePrinter table({"interval", "round-robin dev", "random dev"});
  stats::RunningStats rr_stats, rand_stats;
  const size_t rows =
      std::min({intervals, rr_result.deviations.size(),
                rand_result.deviations.size()});
  for (size_t i = 0; i < rows; ++i) {
    table.begin_row();
    table.cell(static_cast<long>(i + 1));
    table.cell(rr_result.deviations[i], 6);
    table.cell(rand_result.deviations[i], 6);
    rr_stats.add(rr_result.deviations[i]);
    rand_stats.add(rand_result.deviations[i]);
  }
  bench::emit_table(options,
                    "Per-interval workload allocation deviation "
                    "(120 s intervals, hyperexponential arrivals, mean " +
                        util::format_double(mean_ia, 1) + " s):",
                    table);

  util::TablePrinter summary(
      {"strategy", "mean deviation", "max deviation", "stddev"});
  summary.begin_row();
  summary.cell("round-robin");
  summary.cell(rr_stats.mean(), 6);
  summary.cell(rr_stats.max(), 6);
  summary.cell(rr_stats.stddev(), 6);
  summary.begin_row();
  summary.cell("random");
  summary.cell(rand_stats.mean(), 6);
  summary.cell(rand_stats.max(), 6);
  summary.cell(rand_stats.stddev(), 6);
  bench::emit_table(options, "Summary:", summary);

  std::cout << "Reproduction check: round-robin deviations must be far "
               "lower and far less variable than random.\n"
            << "random/round-robin mean deviation ratio: "
            << util::format_double(rand_stats.mean() / rr_stats.mean(), 1)
            << "x\n";
  return 0;
}
