// Ablation A6 — generalized round-robin family.
//
// The paper's Algorithm 2 is one member of the family of deterministic
// weighted round-robins later popularized by OSS load balancers. This
// ablation compares, under the optimized allocation:
//   * Algorithm 2 (smoothed RR, this paper),
//   * smooth weighted round-robin (the nginx algorithm),
//   * random dispatching (the paper's baseline),
// on both the short-window deviation metric of Figure 2 and end-to-end
// response metrics.
#include <iostream>
#include <memory>
#include <numeric>

#include "bench_common.h"
#include "cluster/config.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "dispatch/swrr.h"

namespace {

using DispatcherMaker =
    std::unique_ptr<hs::dispatch::Dispatcher> (*)(const hs::alloc::Allocation&);

std::unique_ptr<hs::dispatch::Dispatcher> make_smooth(
    const hs::alloc::Allocation& a) {
  return std::make_unique<hs::dispatch::SmoothRoundRobinDispatcher>(a);
}
std::unique_ptr<hs::dispatch::Dispatcher> make_swrr(
    const hs::alloc::Allocation& a) {
  return std::make_unique<hs::dispatch::SwrrDispatcher>(a);
}
std::unique_ptr<hs::dispatch::Dispatcher> make_random(
    const hs::alloc::Allocation& a) {
  return std::make_unique<hs::dispatch::RandomDispatcher>(a);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A6: generalized round-robin family — Algorithm 2 vs "
      "nginx-style smooth WRR vs random, under optimized allocation");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");

  bench::print_header("Ablation A6", "Generalized round-robin family",
                      options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  const auto allocation =
      core::policy_allocation(core::PolicyKind::kORR, cluster.speeds(), rho);

  struct Entry {
    const char* label;
    DispatcherMaker maker;
  };
  const Entry entries[] = {
      {"Algorithm 2 (paper)", &make_smooth},
      {"smooth WRR (nginx)", &make_swrr},
      {"random", &make_random},
  };

  util::TablePrinter table({"dispatcher", "mean response ratio", "fairness",
                            "mean allocation deviation"});
  for (const Entry& entry : entries) {
    auto config = bench::paper_experiment(options, cluster.speeds(), rho);
    config.simulation.deviation_expected = allocation.fractions();
    config.simulation.deviation_interval = 120.0;
    const auto result = cluster::run_experiment(
        config, [&allocation, maker = entry.maker] {
          return maker(allocation);
        });
    double dev_sum = 0.0;
    size_t dev_n = 0;
    for (const auto& rep : result.replications) {
      dev_sum += std::accumulate(rep.deviations.begin(),
                                 rep.deviations.end(), 0.0);
      dev_n += rep.deviations.size();
    }
    table.begin_row();
    table.cell(entry.label);
    table.cell(bench::format_ci(result.response_ratio, 3));
    table.cell(bench::format_ci(result.fairness, 2));
    table.cell(dev_n > 0 ? dev_sum / static_cast<double>(dev_n) : 0.0, 6);
  }
  bench::emit_table(options,
                    "Optimized allocation on the base configuration at "
                    "rho = " + util::format_double(rho, 2) + ":",
                    table);

  std::cout << "Reproduction check: both deterministic round-robins must "
               "sit well below random on every column; Algorithm 2 and "
               "the nginx algorithm are expected to be near-equivalent — "
               "the paper's contribution anticipates the now-standard "
               "technique.\n";
  return 0;
}
