// Ablation A5 — online utilization estimation (extension of §5.4).
//
// Figure 6 shows ORR's performance hinges on a decent utilization
// estimate. This ablation removes the need for an operator-supplied one:
// AdaptiveOrr estimates ρ online from the arrival stream the scheduler
// sees anyway (with the paper-recommended slight overestimation as a
// safety factor) and is compared against ORR given the exact ρ (oracle)
// and ORR configured with badly wrong estimates.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "cluster/config.h"
#include "core/adaptive.h"

namespace {

hs::cluster::ExperimentResult run_adaptive(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho, double initial_rho) {
  const auto config = hs::bench::paper_experiment(options, speeds, rho);
  hs::core::AdaptiveOrrOptions adaptive;
  adaptive.mean_job_size = config.simulation.workload.mean_job_size();
  adaptive.time_constant = 20000.0;
  adaptive.recompute_every = 1024;
  adaptive.initial_rho = initial_rho;
  return hs::cluster::run_experiment(config, [speeds, adaptive] {
    return std::make_unique<hs::core::AdaptiveOrrDispatcher>(speeds,
                                                             adaptive);
  });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A5: adaptive ORR — online utilization estimation vs "
      "oracle and misconfigured static estimates (base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("loads", "0.5,0.7,0.85",
                    "comma-separated true utilization levels");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const auto loads = bench::parse_double_list(parser.get_string("loads"));

  bench::print_header("Ablation A5", "Adaptive utilization estimation",
                      options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  util::TablePrinter table({"true rho", "ORR(oracle)", "ORR(assume 0.4)",
                            "ORR(assume 0.95)", "AdaptiveORR(prior 0.4)"});
  for (double rho : loads) {
    table.begin_row();
    table.cell(rho, 2);
    const auto oracle = bench::run_policy(options, core::PolicyKind::kORR,
                                          cluster.speeds(), rho);
    table.cell(bench::format_ci(oracle.response_ratio, 3));
    // Static ORR computed for a fixed wrong utilization regardless of
    // the true one (factor = assumed/true).
    const auto low = bench::run_policy(options, core::PolicyKind::kORR,
                                       cluster.speeds(), rho, 0.4 / rho);
    table.cell(bench::format_ci(low.response_ratio, 3));
    const auto high = bench::run_policy(options, core::PolicyKind::kORR,
                                        cluster.speeds(), rho, 0.95 / rho);
    table.cell(bench::format_ci(high.response_ratio, 3));
    const auto adaptive =
        run_adaptive(options, cluster.speeds(), rho, 0.4);
    table.cell(bench::format_ci(adaptive.response_ratio, 3));
  }
  bench::emit_table(options,
                    "Mean response ratio (AdaptiveORR starts from the same "
                    "bad 0.4 prior as the misconfigured column):",
                    table);

  std::cout << "Reproduction check: AdaptiveORR must track the oracle at "
               "every load, while a fixed 0.4 assumption degrades badly at "
               "high load (Figure 6a) and a fixed 0.95 assumption wastes "
               "the optimization at low load (degenerates to WRR).\n";
  return 0;
}
