// Ablation A4 — validating Eq. (3) against the simulator.
//
// Under the analytic model's own assumptions (Poisson arrivals,
// exponential sizes, PS servers) the simulated mean response ratio of
// each static policy must match the closed-form prediction
// R̄ = μ·Σαᵢ/(sᵢμ−αᵢλ). Under the paper's realistic workload
// (hyperexponential arrivals, CV = 3) the random-dispatch policies drift
// above the prediction — the gap Algorithm 2 closes.
#include <iostream>

#include "alloc/analytic_model.h"
#include "bench_common.h"
#include "cluster/config.h"

namespace {

hs::cluster::ExperimentResult run_workload(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho, bool markovian,
    hs::core::PolicyKind policy) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  if (markovian) {
    config.simulation.workload.arrival_kind =
        hs::workload::ArrivalKind::kPoisson;
    config.simulation.workload.size_kind =
        hs::workload::SizeKind::kExponential;
    config.simulation.workload.fixed_or_mean_size = 76.8;
  }
  return hs::cluster::run_experiment(
      config, hs::core::policy_dispatcher_factory(policy, speeds, rho));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A4: analytic model (Eq. 3) vs simulation, under M/M "
      "assumptions and under the paper's realistic workload");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");

  bench::print_header("Ablation A4", "Analytic model vs simulation", options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  alloc::SystemParameters params;
  params.speeds = cluster.speeds();
  params.rho = rho;
  params.mean_job_size = 76.8;

  util::TablePrinter table({"policy", "Eq.(3) prediction",
                            "sim (M/M workload)", "sim (paper workload)"});
  for (core::PolicyKind policy : core::static_policies()) {
    const auto allocation =
        core::policy_allocation(policy, cluster.speeds(), rho);
    const double predicted =
        alloc::predicted_mean_response_ratio(params, allocation);
    const auto markovian =
        run_workload(options, cluster.speeds(), rho, true, policy);
    const auto realistic =
        run_workload(options, cluster.speeds(), rho, false, policy);
    table.begin_row();
    table.cell(core::policy_name(policy));
    table.cell(predicted, 3);
    table.cell(bench::format_ci(markovian.response_ratio, 3));
    table.cell(bench::format_ci(realistic.response_ratio, 3));
  }
  bench::emit_table(options,
                    "Mean response ratio at rho = " +
                        util::format_double(rho, 2) +
                        " on the base configuration:",
                    table);

  std::cout << "Reproduction check: under M/M assumptions the simulation "
               "must match Eq. (3) closely for the random-dispatch "
               "policies (the model's exact setting); round-robin "
               "dispatching beats the prediction (sub-Poisson substreams), "
               "and the realistic CV = 3 workload degrades random "
               "dispatching well above it.\n";
  return 0;
}
