// Figure 4 — performance under different system sizes.
//
// n computers (n = 2..20), half of speed 10 and half of speed 1, at
// overall utilization 70%. Panels: mean response ratio and fairness (the
// paper omits mean response time here as its trends mirror the ratio).
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Figure 4: effect of system size (n machines, half speed 10 / half "
      "speed 1, n = 2..20, rho = 0.7)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  parser.add_option("max-n", "20", "largest (even) system size");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");
  const auto max_n = static_cast<size_t>(parser.get_long("max-n"));

  bench::print_header("Figure 4", "Effect of system size", options);

  util::TablePrinter ratio_table({"n", "WRAN", "ORAN", "WRR", "ORR",
                                  "LeastLoad"});
  util::TablePrinter fairness_table({"n", "WRAN", "ORAN", "WRR", "ORR",
                                     "LeastLoad"});
  double orr_gain_small = 0.0, orr_gain_large = 0.0;
  double ll_gap_small = 0.0, ll_gap_large = 0.0;
  for (size_t n = 2; n <= max_n; n += 2) {
    const auto cluster = cluster::ClusterConfig::paper_size(n);
    ratio_table.begin_row();
    fairness_table.begin_row();
    ratio_table.cell(static_cast<long>(n));
    fairness_table.cell(static_cast<long>(n));
    double wran = 0.0, orr = 0.0, least = 0.0;
    for (core::PolicyKind policy : core::all_policies()) {
      const auto result =
          bench::run_policy(options, policy, cluster.speeds(), rho);
      ratio_table.cell(bench::format_ci(result.response_ratio, 3));
      fairness_table.cell(bench::format_ci(result.fairness, 2));
      if (policy == core::PolicyKind::kWRAN) {
        wran = result.response_ratio.mean;
      } else if (policy == core::PolicyKind::kORR) {
        orr = result.response_ratio.mean;
      } else if (policy == core::PolicyKind::kLeastLoad) {
        least = result.response_ratio.mean;
      }
    }
    if (n == 8) {
      orr_gain_small = 1.0 - orr / wran;
      ll_gap_small = orr / least;
    }
    if (n == max_n) {
      orr_gain_large = 1.0 - orr / wran;
      ll_gap_large = orr / least;
    }
  }

  bench::emit_table(options, "Mean response ratio:", ratio_table);
  bench::emit_table(options,
                    "Fairness (stddev of response ratio, smaller is "
                    "better):",
                    fairness_table);

  std::cout << "Reproduction check (paper: ORR cuts response ratio vs WRAN "
               "by 35-40% for n > 6;\nthe gap to Dynamic Least-Load widens "
               "as the system grows):\n"
            << "  ORR vs WRAN at n=8:  "
            << util::format_double(orr_gain_small * 100.0, 1) << "%\n"
            << "  ORR vs WRAN at n=max: "
            << util::format_double(orr_gain_large * 100.0, 1) << "%\n"
            << "  ORR/LeastLoad ratio at n=8 vs n=max: "
            << util::format_double(ll_gap_small, 2) << " -> "
            << util::format_double(ll_gap_large, 2) << "\n";
  return 0;
}
