// Ablation A8 — how much is left on the table: the perfect-migration
// pooling bound.
//
// Every scheduler in the paper assigns each job to one machine forever
// (no migration, §4.1). The ideal benchmark above even Dynamic
// Least-Load is a single processor-sharing server with the cluster's
// aggregate speed Σs — equivalent to free, instantaneous migration of
// all jobs at all times. Comparing ORR, Least-Load, and the pooled
// bound shows how the remaining gap splits into "needs feedback"
// (ORR → Least-Load) and "needs migration" (Least-Load → pool).
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A8: perfect-migration pooling bound vs Least-Load vs ORR "
      "(base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("loads", "0.3,0.5,0.7,0.9",
                    "comma-separated utilization levels");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const auto loads = bench::parse_double_list(parser.get_string("loads"));

  bench::print_header("Ablation A8", "Perfect-migration pooling bound",
                      options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  // The pooled system: one PS machine with the aggregate speed. The
  // same workload (λ derives from ρ·Σs either way) flows through it.
  const std::vector<double> pooled = {cluster.total_speed()};

  util::TablePrinter table({"rho", "ORR", "LeastLoad",
                            "pooled PS (migration bound)",
                            "feedback gap", "migration gap"});
  for (double rho : loads) {
    const auto orr = bench::run_policy(options, core::PolicyKind::kORR,
                                       cluster.speeds(), rho);
    const auto ll = bench::run_policy(options, core::PolicyKind::kLeastLoad,
                                      cluster.speeds(), rho);
    const auto pool =
        bench::run_policy(options, core::PolicyKind::kWRR, pooled, rho);
    table.begin_row();
    table.cell(rho, 2);
    table.cell(bench::format_ci(orr.response_ratio, 3));
    table.cell(bench::format_ci(ll.response_ratio, 3));
    table.cell(bench::format_ci(pool.response_ratio, 3));
    table.cell(orr.response_ratio.mean / ll.response_ratio.mean, 2);
    table.cell(ll.response_ratio.mean / pool.response_ratio.mean, 2);
  }
  bench::emit_table(
      options,
      "Mean response ratio ('feedback gap' = ORR/LeastLoad, 'migration "
      "gap' = LeastLoad/pooled):",
      table);

  std::cout << "Reproduction check: pooled PS lower-bounds everything; "
               "the static-to-dynamic gap (feedback) and the "
               "dynamic-to-pooled gap (migration) both widen with load — "
               "locating the paper's static schedulers precisely in the "
               "design space.\n";
  return 0;
}
