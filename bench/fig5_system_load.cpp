// Figure 5 — performance under different system loads.
//
// Base configuration (Table 3): 15 machines, speeds {1.0×5, 1.5×4,
// 2.0×3, 5.0, 10.0, 12.0}, aggregate 44. System utilization is swept;
// panels: mean response ratio and fairness.
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Figure 5: effect of system load on the base configuration "
      "(Table 3, 15 machines, aggregate speed 44)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("loads", "0.3,0.4,0.5,0.6,0.7,0.8,0.9",
                    "comma-separated utilization levels");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);

  const std::vector<double> loads =
      bench::parse_double_list(parser.get_string("loads"));

  bench::print_header("Figure 5", "Effect of system load", options);
  const auto cluster = cluster::ClusterConfig::paper_base();
  std::cout << "Base configuration: " << cluster.describe() << "\n\n";

  util::TablePrinter ratio_table({"rho", "WRAN", "ORAN", "WRR", "ORR",
                                  "LeastLoad"});
  util::TablePrinter fairness_table({"rho", "WRAN", "ORAN", "WRR", "ORR",
                                     "LeastLoad"});
  double orr90_vs_wrr = 0.0, orr90_vs_wran = 0.0;
  for (double rho : loads) {
    ratio_table.begin_row();
    fairness_table.begin_row();
    ratio_table.cell(rho, 2);
    fairness_table.cell(rho, 2);
    double wrr = 0.0, wran = 0.0, orr = 0.0;
    for (core::PolicyKind policy : core::all_policies()) {
      const auto result =
          bench::run_policy(options, policy, cluster.speeds(), rho);
      ratio_table.cell(bench::format_ci(result.response_ratio, 3));
      fairness_table.cell(bench::format_ci(result.fairness, 2));
      if (policy == core::PolicyKind::kWRR) {
        wrr = result.response_ratio.mean;
      } else if (policy == core::PolicyKind::kWRAN) {
        wran = result.response_ratio.mean;
      } else if (policy == core::PolicyKind::kORR) {
        orr = result.response_ratio.mean;
      }
    }
    if (rho >= 0.89 && rho <= 0.91) {
      orr90_vs_wrr = 1.0 - orr / wrr;
      orr90_vs_wran = 1.0 - orr / wran;
    }
  }

  bench::emit_table(options, "Mean response ratio:", ratio_table);
  bench::emit_table(options,
                    "Fairness (stddev of response ratio, smaller is "
                    "better):",
                    fairness_table);

  std::cout << "Reproduction check (paper: at rho = 0.9 ORR's mean response "
               "ratio is ~24% below WRR and ~34% below WRAN):\n"
            << "  measured at rho = 0.9: ORR vs WRR  "
            << util::format_double(orr90_vs_wrr * 100.0, 1) << "%\n"
            << "  measured at rho = 0.9: ORR vs WRAN "
            << util::format_double(orr90_vs_wran * 100.0, 1) << "%\n";
  return 0;
}
