// Ablation A3 — job-size tail heaviness.
//
// The paper fixes Bounded Pareto α = 1.0. This ablation sweeps α (and
// an exponential-size control) to show the optimized allocation's win
// over simple weighted allocation is robust to the size distribution,
// as the PS model predicts (mean response time under M/G/1-PS depends
// on the size distribution only through its mean).
#include <iostream>

#include "bench_common.h"
#include "cluster/config.h"

namespace {

hs::cluster::ExperimentResult run_with_sizes(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho, double pareto_alpha,
    bool exponential, hs::core::PolicyKind policy) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  if (exponential) {
    config.simulation.workload.size_kind =
        hs::workload::SizeKind::kExponential;
    config.simulation.workload.fixed_or_mean_size = 76.8;
  } else {
    config.simulation.workload.pareto_alpha = pareto_alpha;
  }
  return hs::cluster::run_experiment(
      config, hs::core::policy_dispatcher_factory(policy, speeds, rho));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A3: job-size tail sweep — ORR vs WRAN across Bounded "
      "Pareto tail indices and an exponential-size control");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  parser.add_option("alphas", "0.9,1.0,1.3,1.6,2.0",
                    "comma-separated Bounded Pareto tail indices");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  const auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");

  bench::print_header("Ablation A3", "Job size tail sweep", options);

  const auto cluster = cluster::ClusterConfig::paper_base();
  const auto alphas = bench::parse_double_list(parser.get_string("alphas"));

  util::TablePrinter table({"size model", "WRAN ratio", "ORR ratio",
                            "ORR gain %", "WRAN fairness", "ORR fairness"});
  auto add_row = [&](const std::string& label, double alpha,
                     bool exponential) {
    const auto wran = run_with_sizes(options, cluster.speeds(), rho, alpha,
                                     exponential, core::PolicyKind::kWRAN);
    const auto orr = run_with_sizes(options, cluster.speeds(), rho, alpha,
                                    exponential, core::PolicyKind::kORR);
    table.begin_row();
    table.cell(label);
    table.cell(bench::format_ci(wran.response_ratio, 3));
    table.cell(bench::format_ci(orr.response_ratio, 3));
    table.cell(
        (1.0 - orr.response_ratio.mean / wran.response_ratio.mean) * 100.0,
        1);
    table.cell(bench::format_ci(wran.fairness, 2));
    table.cell(bench::format_ci(orr.fairness, 2));
  };

  for (double alpha : alphas) {
    add_row("BoundedPareto alpha=" + util::format_double(alpha, 1), alpha,
            false);
  }
  add_row("Exponential mean=76.8", 0.0, true);

  bench::emit_table(options,
                    "Mean response ratio and fairness at rho = " +
                        util::format_double(rho, 2) + ":",
                    table);

  std::cout << "Reproduction check: ORR's gain over WRAN persists across "
               "all tail indices — optimized allocation does not rely on "
               "the α = 1.0 choice.\n";
  return 0;
}
