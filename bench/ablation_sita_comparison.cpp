// Ablation A9 — what does knowing job sizes buy?
//
// The paper positions its schemes against size-based task assignment
// (Crovella et al.; Schroeder & Harchol-Balter): "Their work assumed
// task sizes are known a priori while this assumption is not needed in
// our work." This ablation quantifies the trade on the base
// configuration, under both service disciplines:
//   * FCFS servers — the setting of the SITA literature, where isolating
//     short jobs from long ones is decisive;
//   * processor sharing — the paper's setting, where preemption already
//     protects short jobs.
// Expectation: SITA-E dominates size-blind policies under FCFS, but
// under PS the size-blind ORR matches or beats it — supporting the
// paper's claim that its optimization achieves the benefit without the
// size oracle.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "cluster/config.h"
#include "dispatch/sita.h"

namespace {

hs::cluster::ExperimentResult run_sita(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho,
    hs::cluster::ServiceDiscipline discipline) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  config.simulation.discipline = discipline;
  const hs::rng::BoundedPareto sizes(
      config.simulation.workload.pareto_lower,
      config.simulation.workload.pareto_upper,
      config.simulation.workload.pareto_alpha);
  return hs::cluster::run_experiment(config, [speeds, sizes] {
    return std::make_unique<hs::dispatch::SitaDispatcher>(speeds, sizes);
  });
}

hs::cluster::ExperimentResult run_static(
    const hs::bench::BenchOptions& options,
    const std::vector<double>& speeds, double rho,
    hs::cluster::ServiceDiscipline discipline,
    hs::core::PolicyKind policy) {
  auto config = hs::bench::paper_experiment(options, speeds, rho);
  config.simulation.discipline = discipline;
  return hs::cluster::run_experiment(
      config, hs::core::policy_dispatcher_factory(policy, speeds, rho));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  util::ArgParser parser(
      "Ablation A9: size-aware SITA-E vs the paper's size-blind policies, "
      "under FCFS and processor-sharing servers (base configuration)");
  bench::BenchOptions::register_options(parser);
  parser.add_option("rho", "0.7", "overall system utilization");
  if (!parser.parse(argc, argv)) {
    return 0;
  }
  auto options = bench::BenchOptions::from_parser(parser);
  const double rho = parser.get_double("rho");
  // FCFS with heavy tails converges slowly but the ordering is huge;
  // keep the default horizon moderate.
  if (options.sim_time > 4.0e5) {
    options.sim_time = 4.0e5;
  }

  bench::print_header("Ablation A9", "Size-aware vs size-blind assignment",
                      options);
  const auto cluster = cluster::ClusterConfig::paper_base();

  util::TablePrinter table({"discipline", "WRR (blind)", "ORR (blind)",
                            "SITA-E (needs sizes)",
                            "LeastLoad (needs feedback)"});
  for (auto discipline : {cluster::ServiceDiscipline::kFcfs,
                          cluster::ServiceDiscipline::kProcessorSharing}) {
    const char* label =
        discipline == cluster::ServiceDiscipline::kFcfs
            ? "FCFS"
            : "processor sharing";
    const auto wrr = run_static(options, cluster.speeds(), rho, discipline,
                                core::PolicyKind::kWRR);
    const auto orr = run_static(options, cluster.speeds(), rho, discipline,
                                core::PolicyKind::kORR);
    const auto sita = run_sita(options, cluster.speeds(), rho, discipline);
    const auto ll = run_static(options, cluster.speeds(), rho, discipline,
                               core::PolicyKind::kLeastLoad);
    table.begin_row();
    table.cell(label);
    table.cell(bench::format_ci(wrr.response_ratio, 3));
    table.cell(bench::format_ci(orr.response_ratio, 3));
    table.cell(bench::format_ci(sita.response_ratio, 3));
    table.cell(bench::format_ci(ll.response_ratio, 3));
  }
  bench::emit_table(options,
                    "Mean response ratio at rho = " +
                        util::format_double(rho, 2) + ":",
                    table);

  std::cout << "Reproduction check: under FCFS, SITA-E's size isolation "
               "must dominate the size-blind static policies by a large "
               "factor; under processor sharing the paper's ORR matches "
               "or beats it without knowing any job size — the paper's "
               "central positioning claim.\n";
  return 0;
}
