# Shared executable-target helpers.
#
# Every executable family in the tree repeats one add_executable +
# target_link_libraries pattern; each is defined once here and used from
# tests/, bench/ and examples/. Included from the top-level
# CMakeLists.txt after find_package(GTest) / find_package(benchmark), so
# the imported targets referenced below exist.

include(GoogleTest)

# A plain example linked against the umbrella library.
function(hs_add_example name)
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE hetsched hetsched_warnings)
endfunction()

# A reproduction/ablation bench sharing the bench_common CLI harness.
function(hs_add_bench name)
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE hs_bench_common hetsched_warnings)
endfunction()

# A google-benchmark microbenchmark.
function(hs_add_micro name)
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE hetsched benchmark::benchmark
    benchmark::benchmark_main hetsched_warnings)
endfunction()

# A gtest binary; each TEST/TEST_P case registers individually with
# ctest.
function(hs_add_test name)
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE hetsched GTest::gtest GTest::gtest_main
    hetsched_warnings)
  gtest_discover_tests(${name} DISCOVERY_TIMEOUT 60)
endfunction()
